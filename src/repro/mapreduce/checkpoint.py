"""Crash-consistent driver checkpointing and cooperative cancellation.

PR 4 made *tasks* fault tolerant and the storage layer made *blocks*
durable, but the driver itself remained a single point of failure: a
crash or Ctrl-C mid-operation lost every completed wave, and multi-round
operations (kNN correctness rounds, closest-pair) restarted from zero.
Real SpatialHadoop inherits JobTracker restart/recovery from Hadoop;
this module gives the simulated driver the same contract.

The design leans on a property the runner already guarantees: waves are
deterministic. Given the same workspace, command and fault plan, the
driver executes the same sequence of waves with the same inputs, and the
merge of a wave's task results back into counters, traces, history and
telemetry is a pure function of the wave's ``(datas, attempts, summary)``
triple. So a checkpoint does not need to freeze the whole driver — it
only needs to journal each wave's result triple. A resumed run re-issues
the original command and the runner *replays* journaled waves instead of
executing them; every downstream effect (counters, history records,
normalized traces, operation answers) is then bit-identical to an
uninterrupted run by construction.

On disk, a checkpointed run is a directory::

    <workspace>.ckpt/
        MANIFEST.json        # run config, status, fired driver faults
        wave-00000.ckpt      # wave 0's (datas, attempts, summary)
        wave-00001.ckpt      # ...

Wave files use the workspace framing discipline (magic + version +
CRC-32 + length header around a pickle payload) and are committed with
:func:`repro.core.workspace.atomic_write` — temp + fsync + rename — so a
crash leaves either a complete checkpoint or none. Commits are
idempotent: re-committing wave N simply replaces wave N. The manifest
records the command, workspace, fault-plan spec and the *fault-plan
position* (which driver faults already fired), so a resumed run does not
re-fire the crash that killed it.

Corruption policy — two distinct failure modes, two behaviours:

* a torn/corrupt **wave file** (e.g. the ``crashdriver:<wave>:<fraction>``
  chaos fault, which shreds the final checkpoint before dying) is treated
  as a cache miss: the wave re-executes and the commit replaces the bad
  file. Recovery must never be blocked by the very crash it recovers from.
* a corrupt **manifest**, or a wave file whose fingerprint does not match
  the wave about to run (the workspace changed underneath the journal),
  raises the typed :class:`CheckpointCorruptError` — never a bare
  ``UnpicklingError``. ``repro fsck`` surfaces both via
  :func:`fsck_checkpoints`.

Cooperative cancellation rides the same layer: a
:class:`CancellationToken` (armed by ``--deadline`` and the CLI's
SIGINT/SIGTERM handlers) is polled at task, wave and round boundaries —
:func:`check_active` is the driver-side poll the executors call between
tasks — and stopping raises :class:`RunCancelled` /
:class:`DeadlineExceeded` out of the runner, past the shm-arena and
pool cleanup paths, leaving a resumable journal behind.
"""

from __future__ import annotations

import gc
import json
import os
import pickle
import shutil
import struct
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.workspace import atomic_write

#: Wave-file magic; deliberately the same length as the workspace magic.
MAGIC = b"REPROCKP"
FORMAT_VERSION = 1
#: Header after the magic: version (u8), payload CRC-32 (u32), length (u64).
_HEADER = struct.Struct(">BIQ")

#: Manifest schema version.
MANIFEST_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"

#: Suffix of the default checkpoint directory, next to the workspace.
CHECKPOINT_DIR_SUFFIX = ".ckpt"


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
class CheckpointError(Exception):
    """Base class for checkpoint persistence failures."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file is truncated, bit-flipped, stale, or unreadable."""


class CheckpointNotFoundError(CheckpointError):
    """No resumable run exists where one was expected."""


class RunInterrupted(RuntimeError):
    """Base class for a driver run stopping before its command finished."""


class DriverCrashed(RunInterrupted):
    """The fault plan scripted the driver itself to die at a wave boundary."""


class RunCancelled(RunInterrupted):
    """A cooperative cancellation (signal) stopped the run at a boundary."""


class DeadlineExceeded(RunCancelled):
    """The run overran its ``--deadline`` budget and stopped at a boundary."""


# ----------------------------------------------------------------------
# Cooperative cancellation
# ----------------------------------------------------------------------
class CancellationToken:
    """A cancel flag plus an optional deadline, polled at boundaries.

    The deadline clock is wall time *plus* any simulated driver stalls
    injected by ``hangdriver`` faults (:meth:`add_hang`), so deadline
    tests are deterministic: a scripted 30 s stall trips a 5 s deadline
    on every backend without sleeping.
    """

    def __init__(self, deadline_s: Optional[float] = None):
        self.deadline_s = deadline_s
        self.reason = ""
        #: Signal number that requested the cancel, when one did (the
        #: CLI turns it into the conventional 128+N exit code).
        self.signum: Optional[int] = None
        self.simulated_hang_s = 0.0
        self._cancelled = False
        self._started = time.monotonic()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def elapsed_s(self) -> float:
        return (time.monotonic() - self._started) + self.simulated_hang_s

    def cancel(self, reason: str = "cancelled",
               signum: Optional[int] = None) -> None:
        """Request a stop at the next task/wave/round boundary."""
        self._cancelled = True
        self.reason = reason
        if signum is not None:
            self.signum = signum

    def add_hang(self, seconds: float) -> None:
        """Charge a simulated driver stall against the deadline clock."""
        self.simulated_hang_s += max(0.0, float(seconds))

    def check(self) -> None:
        """Raise if the run should stop; the boundary poll."""
        if self._cancelled:
            raise RunCancelled(self.reason or "run cancelled")
        if self.deadline_s is not None and self.elapsed_s > self.deadline_s:
            raise DeadlineExceeded(
                f"deadline of {self.deadline_s:.3f}s exceeded "
                f"({self.elapsed_s:.3f}s elapsed"
                + (
                    f", {self.simulated_hang_s:.3f}s of injected driver stall"
                    if self.simulated_hang_s
                    else ""
                )
                + ")"
            )


#: The driver's live token, polled by executors between tasks. A module
#: global (not an executor attribute) so it can never leak into a
#: pickled workspace, and worker processes — which never set it — poll
#: a permanent no-op. The driver is single-threaded, so one slot is
#: enough.
_ACTIVE_TOKEN: Optional[CancellationToken] = None


def set_active_token(token: Optional[CancellationToken]) -> None:
    """Install (or clear) the token :func:`check_active` polls."""
    global _ACTIVE_TOKEN
    _ACTIVE_TOKEN = token


def check_active() -> None:
    """Task-boundary cancellation poll; free when no token is armed."""
    if _ACTIVE_TOKEN is not None:
        _ACTIVE_TOKEN.check()


# ----------------------------------------------------------------------
# Wave-file framing
# ----------------------------------------------------------------------
#: Below this length a record list is pickled as-is: the columnar
#: transpose has per-call overhead that only pays off in bulk.
_COLUMNAR_MIN = 64

#: Containers larger than this are not walked element-by-element when
#: they fail the bulk encodings — the walk itself would cost more than
#: pickling ever could.
_WALK_MAX = 512


def _thaw_records(kind: str, count: int, raw: bytes) -> list:
    from repro.mapreduce.columnar import ColumnarPayload

    return ColumnarPayload._from_portable(kind, count, raw).materialize()


def _thaw_pairs(left: list, right: list) -> list:
    return list(zip(left, right))


class _Packed:
    """A stand-in that unpickles *as* the value it replaced.

    ``_pack`` swaps large homogeneous record lists for one of these;
    pickle serialises the columnar reduce tuple instead of 50k record
    objects, and the load side rebuilds the original list with no
    checkpoint-specific decode step.
    """

    __slots__ = ("_reduce_tuple",)

    def __init__(self, reduce_tuple: tuple):
        self._reduce_tuple = reduce_tuple

    def __reduce__(self):
        return self._reduce_tuple


def _pack_list(lst: list) -> Any:
    from repro.mapreduce.columnar import ColumnarPayload

    payload = ColumnarPayload.from_records(lst)
    if payload is not None:
        return _Packed(
            (_thaw_records, (payload.kind, payload.count, payload.tobytes()))
        )
    # Keyed emissions and join pairs: transpose with zip (C speed) and
    # encode each side on its own, worthwhile whenever at least one side
    # columnarises. The per-element type check is load-bearing: Points
    # are iterable, so without it a mixed list could zip apart and thaw
    # back as plain tuples.
    if type(lst[0]) is tuple and set(map(type, lst)) == {tuple}:
        try:
            left, right = zip(*lst, strict=True)
        except ValueError:
            return lst
        left = _pack_list(list(left))
        right = _pack_list(list(right))
        if isinstance(left, _Packed) or isinstance(right, _Packed):
            return _Packed((_thaw_pairs, (left, right)))
    return lst


def _pack(obj: Any) -> Any:
    """Shallow structural walk swapping bulk record lists for columns.

    Tuples (the per-task data records) and small dicts (the wave record
    itself, counter maps) are walked; lists first try the bulk encodings
    and are only walked element-wise while small. Scalars and everything
    exotic pass through to plain pickle.
    """
    t = type(obj)
    if t is tuple:
        return tuple(_pack(e) for e in obj)
    if t is list:
        if len(obj) >= _COLUMNAR_MIN:
            packed = _pack_list(obj)
            if packed is not obj:
                return packed
        if len(obj) <= _WALK_MAX:
            return [_pack(e) for e in obj]
        return obj
    if t is dict and len(obj) <= _WALK_MAX:
        return {k: _pack(v) for k, v in obj.items()}
    return obj


def write_checkpoint_file(path: Path, obj: Any) -> None:
    """Atomically persist ``obj`` under the checkpoint framing.

    Three hot-path economies, all invisible to the read side:

    * Bulk Point/Rectangle lists inside the wave payload are transposed
      into flat float64 columns before pickling (``_pack``) — ~5x less
      serialisation time and ~35% fewer bytes than object pickling, and
      ``pickle.loads`` rebuilds the original lists unaided.
    * No fsync: the CRC framing means a torn wave file reads as corrupt
      and replays as a cache miss, so durability against power loss buys
      nothing the read path doesn't already absorb.
    * Garbage collection pauses for the duration. Packing a megabyte
      wave allocates enough temporaries to trip a full collection right
      here, charging a scan of the *application's* heap to the journal;
      the temporaries all die before re-enable, so deferring costs the
      eventual collection nothing.

    Together these keep wave commits inside the <5% fault-free overhead
    budget (E16).
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        payload = pickle.dumps(
            _pack(obj), protocol=pickle.HIGHEST_PROTOCOL
        )
        header = MAGIC + _HEADER.pack(
            FORMAT_VERSION, zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
        )
        atomic_write(path, header, payload, sync=False)
    finally:
        if was_enabled:
            gc.enable()


def read_checkpoint_file(path: Path) -> Any:
    """Decode one wave file, verifying magic, version, length and CRC.

    Every failure mode raises :class:`CheckpointCorruptError` with the
    cause spelled out — callers that *tolerate* corruption (the replay
    path, fsck) catch that one type.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointCorruptError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    header_end = len(MAGIC) + _HEADER.size
    if not raw.startswith(MAGIC):
        raise CheckpointCorruptError(
            f"checkpoint {path} has no checkpoint magic"
        )
    if len(raw) < header_end:
        raise CheckpointCorruptError(
            f"checkpoint {path} is truncated (incomplete header)"
        )
    version, crc, length = _HEADER.unpack(raw[len(MAGIC):header_end])
    if version > FORMAT_VERSION:
        raise CheckpointCorruptError(
            f"checkpoint {path} uses format v{version}; this release "
            f"reads up to v{FORMAT_VERSION}"
        )
    payload = raw[header_end:]
    if len(payload) != length:
        raise CheckpointCorruptError(
            f"checkpoint {path} is truncated: header promises {length} "
            f"payload bytes, file has {len(payload)}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CheckpointCorruptError(
            f"checkpoint {path} failed its checksum — the file is corrupt"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} passed its checksum but failed to decode "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def default_checkpoint_dir(workspace_path: Path) -> Path:
    """The conventional checkpoint directory for a workspace file."""
    workspace_path = Path(workspace_path)
    return workspace_path.with_name(
        workspace_path.name + CHECKPOINT_DIR_SUFFIX
    )


def _wave_file_name(index: int) -> str:
    return f"wave-{index:05d}.ckpt"


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------
class CheckpointManager:
    """One checkpointed run: its directory, manifest and wave journal.

    Create one with :meth:`create` (fresh run) or :meth:`load` (resume),
    then hand it to ``JobRunner.set_checkpoint``. The runner calls
    :meth:`replay` at each wave boundary — a hit short-circuits the wave
    — and :meth:`commit` after each executed wave. :meth:`finish`
    garbage-collects the directory once the command completed.
    """

    def __init__(self, directory: Path, manifest: Dict[str, Any]):
        self.directory = Path(directory)
        self.manifest = manifest
        #: Wave indexes journaled on disk when this manager was opened.
        self._available = self._scan_waves()
        #: Activity counters for the recovery report (this invocation).
        self.waves_replayed = 0
        self.waves_committed = 0
        #: ``(index, message)`` of journaled waves that had to be
        #: discarded as corrupt and re-executed.
        self.corrupt_skipped: List[Tuple[int, str]] = []
        #: Wall seconds this manager spent journaling — arming, wave
        #: commits, replay reads and final GC. This is the *attributed*
        #: cost of crash consistency, the number the E16 overhead budget
        #: gates on: on sub-second workloads an end-to-end A/B wall
        #: delta drowns in scheduler jitter, while this accumulator is
        #: deterministic.
        self.overhead_s = 0.0

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: Path,
        argv: Optional[List[str]] = None,
        workspace: str = "",
        faults: Optional[str] = None,
        workers: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> "CheckpointManager":
        """Start a fresh checkpointed run, clearing any stale journal."""
        t0 = time.perf_counter()
        directory = Path(directory)
        if directory.exists():
            shutil.rmtree(directory)
        directory.mkdir(parents=True)
        manifest = {
            "format": MANIFEST_VERSION,
            "status": "running",
            "created": time.time(),
            "argv": list(argv or []),
            "workspace": workspace,
            "faults": faults,
            "workers": workers,
            "deadline": deadline,
            "waves": 0,
            "fired": [],
            "reason": None,
        }
        manager = cls(directory, manifest)
        manager._write_manifest()
        manager.overhead_s += time.perf_counter() - t0
        return manager

    @classmethod
    def load(cls, directory: Path) -> "CheckpointManager":
        """Open an existing journal for resumption.

        Raises :class:`CheckpointNotFoundError` when there is nothing to
        resume and :class:`CheckpointCorruptError` when the manifest is
        unreadable — never a bare JSON/pickle error.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise CheckpointNotFoundError(
                f"no resumable run at {directory} (no {MANIFEST_NAME})"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointCorruptError(
                f"checkpoint manifest {manifest_path} is corrupt "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        if not isinstance(manifest, dict) or "status" not in manifest:
            raise CheckpointCorruptError(
                f"checkpoint manifest {manifest_path} is not a run manifest"
            )
        if int(manifest.get("format", 0)) > MANIFEST_VERSION:
            raise CheckpointCorruptError(
                f"checkpoint manifest {manifest_path} uses format "
                f"v{manifest.get('format')}; this release reads up to "
                f"v{MANIFEST_VERSION}"
            )
        return cls(directory, manifest)

    # -- manifest -------------------------------------------------------
    def _write_manifest(self) -> None:
        # sync=False: the crash model is process death, which keeps the
        # page cache, and the rename is atomic either way — a reader
        # sees the previous manifest or this one, never a torn file.
        atomic_write(
            self.directory / MANIFEST_NAME,
            json.dumps(self.manifest, indent=2, sort_keys=True).encode(),
            sync=False,
        )

    @property
    def status(self) -> str:
        return str(self.manifest.get("status", "unknown"))

    @property
    def argv(self) -> List[str]:
        return list(self.manifest.get("argv") or [])

    @property
    def fired(self) -> set:
        """Driver faults that already fired, as ``(wave, spec)`` pairs."""
        return {tuple(entry) for entry in self.manifest.get("fired") or []}

    def mark_fired(self, key: Tuple[int, int]) -> None:
        """Persist that driver fault ``key`` fired — before it takes
        effect, so a resumed run never re-fires the crash that killed it."""
        fired = self.fired
        if key in fired:
            return
        fired.add(key)
        self.manifest["fired"] = sorted(list(k) for k in fired)
        self._write_manifest()

    def interrupt(self, reason: str) -> None:
        """Mark the run interrupted-but-resumable."""
        self.manifest["status"] = "interrupted"
        self.manifest["reason"] = reason
        self._write_manifest()

    # -- the wave journal -----------------------------------------------
    def _scan_waves(self) -> Dict[int, Path]:
        waves: Dict[int, Path] = {}
        if not self.directory.is_dir():
            return waves
        for path in self.directory.glob("wave-*.ckpt"):
            try:
                index = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            waves[index] = path
        return waves

    @property
    def waves_available(self) -> int:
        """Journaled waves on disk when this manager was opened."""
        return len(self._available)

    def replay(self, index: int, fingerprint: str) -> Optional[Any]:
        """The journaled result of wave ``index``, or ``None`` to execute.

        A torn or corrupt wave file is a cache miss (recorded in
        :attr:`corrupt_skipped`); a *readable* checkpoint whose
        fingerprint disagrees with the wave about to run means the
        journal belongs to a different command or workspace state and
        raises :class:`CheckpointCorruptError`.
        """
        path = self._available.get(index)
        if path is None:
            return None
        t0 = time.perf_counter()
        try:
            record = read_checkpoint_file(path)
        except CheckpointCorruptError as exc:
            self.corrupt_skipped.append((index, str(exc)))
            self._available.pop(index, None)
            self.overhead_s += time.perf_counter() - t0
            return None
        if (
            not isinstance(record, dict)
            or record.get("fingerprint") != fingerprint
        ):
            raise CheckpointCorruptError(
                f"checkpoint {path} is stale: it journals wave "
                f"{record.get('fingerprint')!r} but the resumed run is at "
                f"{fingerprint!r} — the workspace or command changed; "
                "delete the checkpoint directory to start over"
            )
        self.waves_replayed += 1
        self.overhead_s += time.perf_counter() - t0
        return record["payload"]

    def commit(self, index: int, fingerprint: str, payload: Any) -> bool:
        """Journal one executed wave; idempotent, atomic.

        Returns ``False`` (and journals nothing) when the payload cannot
        be pickled — a checkpoint must never fail the job it protects.
        """
        t0 = time.perf_counter()
        path = self.directory / _wave_file_name(index)
        try:
            write_checkpoint_file(
                path, {"fingerprint": fingerprint, "payload": payload}
            )
        except (pickle.PicklingError, AttributeError, TypeError, OSError):
            self.overhead_s += time.perf_counter() - t0
            return False
        self._available[index] = path
        self.waves_committed += 1
        self.overhead_s += time.perf_counter() - t0
        # In-memory only: recovery discovers waves by scanning the
        # directory, so the manifest's count is display metadata — it
        # rides along with the next durable write (``interrupt``, or
        # ``mark_fired`` before an injected crash) instead of paying an
        # fsync'd rewrite on every fault-free wave boundary.
        if index + 1 > int(self.manifest.get("waves") or 0):
            self.manifest["waves"] = index + 1
        return True

    def tear_wave_file(self, index: int, fraction: float) -> None:
        """Shred wave ``index``'s file to ``fraction`` of its bytes.

        Chaos tooling for ``crashdriver:<wave>:<fraction>``: simulates a
        storage-level tear of the final checkpoint (the case atomic
        rename cannot protect against, e.g. power loss after the rename
        but mid-flush on a non-journaling disk), so resume tests cover
        the corrupt-checkpoint path.
        """
        path = self._available.get(index)
        if path is None or not path.exists():
            return
        raw = path.read_bytes()
        keep = max(0, min(len(raw), int(len(raw) * float(fraction))))
        path.write_bytes(raw[:keep])

    # -- lifecycle ------------------------------------------------------
    def finish(self) -> None:
        """The command completed: garbage-collect the journal."""
        t0 = time.perf_counter()
        self.manifest["status"] = "complete"
        if self.directory.is_dir():
            shutil.rmtree(self.directory, ignore_errors=True)
        self._available.clear()
        self.overhead_s += time.perf_counter() - t0

    def recovery_summary(self) -> Dict[str, Any]:
        """What a resume did, for the JobHistory recovery section."""
        return {
            "directory": str(self.directory),
            "command": " ".join(self.argv),
            "interrupted_reason": self.manifest.get("reason"),
            "waves_replayed": self.waves_replayed,
            "waves_executed": self.waves_committed,
            "corrupt_checkpoints_discarded": len(self.corrupt_skipped),
        }


# ----------------------------------------------------------------------
# Hygiene: listing and fsck
# ----------------------------------------------------------------------
def list_runs(root: Path) -> List[Dict[str, Any]]:
    """Resumable (and corrupt) checkpointed runs under ``root``.

    Scans for ``*.ckpt/MANIFEST.json`` directly below ``root``; corrupt
    manifests are reported with status ``corrupt`` rather than raised,
    so one rotten journal cannot hide the healthy ones.
    """
    root = Path(root)
    runs: List[Dict[str, Any]] = []
    if not root.is_dir():
        return runs
    for directory in sorted(root.glob("*" + CHECKPOINT_DIR_SUFFIX)):
        if not (directory / MANIFEST_NAME).exists():
            continue
        try:
            manager = CheckpointManager.load(directory)
        except CheckpointCorruptError as exc:
            runs.append(
                {
                    "directory": str(directory),
                    "status": "corrupt",
                    "command": "",
                    "waves": 0,
                    "reason": str(exc),
                }
            )
            continue
        except CheckpointNotFoundError:
            continue
        runs.append(
            {
                "directory": str(directory),
                "status": manager.status,
                "command": " ".join(manager.argv),
                "waves": manager.waves_available,
                "reason": manager.manifest.get("reason"),
                "workspace": manager.manifest.get("workspace"),
            }
        )
    return runs


def fsck_checkpoints(
    directory: Path, repair: bool = False
) -> List[Dict[str, Any]]:
    """Validate one checkpoint directory with the fsck discipline.

    Returns one issue dict per problem (shape mirrors
    :class:`~repro.mapreduce.storage.FsckIssue`): a corrupt manifest,
    or wave files failing their framing/CRC. With ``repair=True``
    corrupt wave files are deleted — resume treats a missing wave as a
    cache miss and simply re-executes it, so deletion *is* the repair.
    """
    directory = Path(directory)
    issues: List[Dict[str, Any]] = []
    if not directory.is_dir():
        return issues
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists():
        try:
            CheckpointManager.load(directory)
        except CheckpointError as exc:
            issues.append(
                {
                    "file": str(manifest_path),
                    "code": "checkpoint-manifest-corrupt",
                    "message": str(exc),
                    "repaired": False,
                }
            )
    else:
        issues.append(
            {
                "file": str(directory),
                "code": "checkpoint-manifest-missing",
                "message": "checkpoint directory has no manifest",
                "repaired": False,
            }
        )
    for path in sorted(directory.glob("wave-*.ckpt")):
        try:
            read_checkpoint_file(path)
        except CheckpointCorruptError as exc:
            repaired = False
            if repair:
                try:
                    os.unlink(path)
                    repaired = True
                except OSError:
                    pass
            issues.append(
                {
                    "file": str(path),
                    "code": "checkpoint-corrupt",
                    "message": str(exc)
                    + ("; deleted (wave will re-execute)" if repaired else ""),
                    "repaired": repaired,
                }
            )
    return issues
