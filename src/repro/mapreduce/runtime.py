"""The MapReduce execution engine."""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.mapreduce.cluster import ClusterModel, TaskStats
from repro.mapreduce.counters import Counter, Counters
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import (
    CommitContext,
    Job,
    MapContext,
    ReduceContext,
)
from repro.mapreduce.types import InputSplit


def _record_size(record: Any) -> int:
    """Rough on-the-wire size of a record, for the shuffle-bytes counter."""
    if isinstance(record, (str, bytes)):
        return len(record)
    return max(sys.getsizeof(record), 16)


def default_splitter(fs: FileSystem, job: Job) -> List[InputSplit]:
    """One split per block, key = block index (plain Hadoop behaviour).

    Jobs may read several input files (e.g. the two sides of an SJMR join);
    map functions see the originating file as ``ctx.split.file``.
    """
    splits: List[InputSplit] = []
    for file_name in job.input_files:
        entry = fs.get(file_name)
        splits.extend(
            InputSplit(file=file_name, block_index=i, block=block, key=i)
            for i, block in enumerate(entry.blocks)
        )
    return splits


def default_reader(split: InputSplit) -> Tuple[Any, List[Any]]:
    """Pass the split's records through untouched."""
    return split.key, list(split.block.records)


@dataclass
class JobResult:
    """Everything a driver needs to know about a finished job."""

    output: List[Any]
    counters: Counters
    map_tasks: List[TaskStats] = field(default_factory=list)
    reduce_tasks: List[TaskStats] = field(default_factory=list)
    makespan: float = 0.0

    @property
    def blocks_read(self) -> int:
        return self.counters.get(Counter.BLOCKS_READ)

    @property
    def shuffle_records(self) -> int:
        return self.counters.get(Counter.SHUFFLE_RECORDS)


class JobRunner:
    """Executes :class:`Job` instances against a :class:`FileSystem`.

    One runner holds one :class:`ClusterModel`; drivers that issue several
    jobs for one logical operation should sum the per-job makespans (plus
    any driver-side work) to report the operation's simulated time.
    """

    def __init__(
        self,
        fs: FileSystem,
        cluster: Optional[ClusterModel] = None,
    ):
        self.fs = fs
        self.cluster = cluster or ClusterModel()

    # ------------------------------------------------------------------
    def run(self, job: Job) -> JobResult:
        """Run ``job`` to completion and return its result."""
        counters = Counters()
        splitter = job.splitter or default_splitter
        reader = job.reader or default_reader

        for file_name in job.input_files:
            counters.increment(
                Counter.BLOCKS_TOTAL, self.fs.get(file_name).num_blocks
            )

        splits = splitter(self.fs, job)
        counters.increment(Counter.BLOCKS_READ, len(splits))
        pruned = counters.get(Counter.BLOCKS_TOTAL) - len(splits)
        if pruned > 0:
            counters.increment(Counter.BLOCKS_PRUNED, pruned)

        output: List[Any] = []
        map_stats, intermediate = self._run_map_wave(
            job, splits, reader, counters, output
        )

        reduce_stats: List[TaskStats] = []
        shuffle_records = 0
        if job.reduce_fn is not None:
            shuffle_records = len(intermediate)
            counters.increment(Counter.SHUFFLE_RECORDS, shuffle_records)
            counters.increment(
                Counter.SHUFFLE_BYTES,
                sum(_record_size(v) for _, v in intermediate),
            )
            reduce_stats = self._run_reduce_wave(
                job, intermediate, counters, output
            )
        else:
            # Map-only job: emitted pairs join the direct output.
            output.extend(v for _, v in intermediate)

        if job.commit_fn is not None:
            commit_ctx = CommitContext(job, counters, output)
            job.commit_fn(commit_ctx)

        counters.increment(Counter.OUTPUT_RECORDS, len(output))
        makespan = self.cluster.job_makespan(
            map_stats, reduce_stats, shuffle_records
        )
        return JobResult(
            output=output,
            counters=counters,
            map_tasks=map_stats,
            reduce_tasks=reduce_stats,
            makespan=makespan,
        )

    # ------------------------------------------------------------------
    def _run_map_wave(
        self,
        job: Job,
        splits: List[InputSplit],
        reader,
        counters: Counters,
        output: List[Any],
    ) -> Tuple[List[TaskStats], List[Tuple[Any, Any]]]:
        intermediate: List[Tuple[Any, Any]] = []
        stats: List[TaskStats] = []
        counters.increment(Counter.MAP_TASKS, len(splits))
        for split in splits:
            ctx = MapContext(job, counters, split)
            started = time.perf_counter()
            key, records = reader(split)
            job.map_fn(key, records, ctx)
            emitted = ctx._emitted
            if job.combine_fn is not None and emitted:
                emitted = self._combine(job, counters, emitted)
            elapsed = time.perf_counter() - started
            counters.increment(Counter.MAP_INPUT_RECORDS, len(records))
            counters.increment(Counter.MAP_OUTPUT_RECORDS, len(ctx._emitted))
            stats.append(
                TaskStats(
                    task_id=f"map-{split.block_index}",
                    records_in=len(records),
                    records_out=len(emitted) + len(ctx._output),
                    seconds=elapsed,
                )
            )
            intermediate.extend(emitted)
            output.extend(ctx._output)
        return stats, intermediate

    def _combine(
        self,
        job: Job,
        counters: Counters,
        emitted: List[Tuple[Any, Any]],
    ) -> List[Tuple[Any, Any]]:
        """Run the combiner over one map task's output (grouped by key)."""
        groups: Dict[Any, List[Any]] = {}
        for k, v in emitted:
            groups.setdefault(k, []).append(v)
        ctx = ReduceContext(job, counters, task_index=-1)
        for k, values in groups.items():
            job.combine_fn(k, values, ctx)  # type: ignore[misc]
        counters.increment(Counter.COMBINE_INPUT_RECORDS, len(emitted))
        counters.increment(Counter.COMBINE_OUTPUT_RECORDS, len(ctx._emitted))
        # Combiner may also early-flush via write_output; preserve that.
        if ctx._output:
            raise RuntimeError(
                "combiners must not write final output; emit instead"
            )
        return ctx._emitted

    def _run_reduce_wave(
        self,
        job: Job,
        intermediate: List[Tuple[Any, Any]],
        counters: Counters,
        output: List[Any],
    ) -> List[TaskStats]:
        num_reducers = max(1, job.num_reducers)
        buckets: List[Dict[Any, List[Any]]] = [{} for _ in range(num_reducers)]
        for k, v in intermediate:
            index = job.partitioner(k, num_reducers) if num_reducers > 1 else 0
            buckets[index].setdefault(k, []).append(v)

        stats: List[TaskStats] = []
        active = [b for b in buckets if b]
        counters.increment(Counter.REDUCE_TASKS, len(active))
        for task_index, bucket in enumerate(buckets):
            if not bucket:
                continue
            ctx = ReduceContext(job, counters, task_index)
            started = time.perf_counter()
            # Hadoop sorts by key before reducing; keep that contract for
            # reducers that rely on key order.
            for k in _sorted_keys(bucket):
                job.reduce_fn(k, bucket[k], ctx)  # type: ignore[misc]
            elapsed = time.perf_counter() - started
            records_in = sum(len(vs) for vs in bucket.values())
            counters.increment(Counter.REDUCE_INPUT_RECORDS, records_in)
            counters.increment(
                Counter.REDUCE_OUTPUT_RECORDS, len(ctx._emitted) + len(ctx._output)
            )
            stats.append(
                TaskStats(
                    task_id=f"reduce-{task_index}",
                    records_in=records_in,
                    records_out=len(ctx._emitted) + len(ctx._output),
                    seconds=elapsed,
                )
            )
            # Reduce emit() goes to the job output (there is no later stage).
            output.extend(v for _, v in ctx._emitted)
            output.extend(ctx._output)
        return stats


def _sorted_keys(bucket: Dict[Any, List[Any]]) -> List[Any]:
    """Keys in sorted order when comparable, insertion order otherwise."""
    keys = list(bucket.keys())
    try:
        return sorted(keys)
    except TypeError:
        return keys
