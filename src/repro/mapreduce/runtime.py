"""The MapReduce execution engine.

Jobs run as two waves — map, then reduce — and each wave is dispatched
through a pluggable :class:`~repro.mapreduce.executor.Executor`: serially
in-process (the default) or across a pool of worker processes. To keep the
two backends bit-identical, tasks are pure functions: each task builds its
own :class:`Counters`, and the driver recombines task results **in split /
bucket order**, so output lists and counter values never depend on which
backend (or how many workers) ran the wave.

Task durations are measured with ``time.process_time`` — per-task CPU
seconds, not wall-clock — so the simulated makespan produced by the
:class:`ClusterModel` is unaffected by real parallelism (worker processes
time their own CPU, oversubscription and scheduling noise excluded).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.mapreduce.cluster import ClusterModel, TaskStats
from repro.mapreduce.counters import Counter, Counters
from repro.mapreduce.executor import (
    CHUNKS_PER_WORKER,
    Executor,
    make_executor,
    resolve_workers,
)
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import (
    CommitContext,
    Job,
    MapContext,
    ReduceContext,
    default_partitioner,
)
from repro.mapreduce.types import InputSplit
from repro.observe.history import JobHistory
from repro.observe.metrics import (
    SHUFFLE_BYTES_BUCKETS,
    TASK_DURATION_BUCKETS,
    MetricsRegistry,
)
from repro.observe.trace import NullTracer

#: Per-task clock: CPU seconds of the calling process. Worker processes
#: time their own CPU, so real parallelism cannot corrupt the simulated
#: makespan (wall-clock in an oversubscribed pool would).
_task_clock = time.process_time

#: Shared no-op tracer: tracing must cost nothing until enabled.
_NULL_TRACER = NullTracer()


class _RecordSizer:
    """Memoised record sizing: one ``sys.getsizeof`` per record shape.

    Estimates the rough on-the-wire size of shuffled records for the
    shuffle-bytes counter. Shuffled records are overwhelmingly instances
    of a handful of types (tuples of a few fixed layouts, geometry
    shapes), so sizing one sample per (type, length) bucket replaces a
    per-record ``sys.getsizeof`` call with a dict lookup. Strings and
    bytes keep their exact length.
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: Dict[Any, int] = {}

    def size(self, record: Any) -> int:
        if isinstance(record, (str, bytes)):
            return len(record)
        if isinstance(record, (tuple, list)):
            key: Any = (type(record), len(record))
        else:
            key = type(record)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._cache[key] = max(sys.getsizeof(record), 16)
        return cached

    def total(self, pairs: Sequence[Tuple[Any, Any]]) -> int:
        size = self.size
        return sum(size(v) for _, v in pairs)


def default_splitter(fs: FileSystem, job: Job) -> List[InputSplit]:
    """One split per block, key = block index (plain Hadoop behaviour).

    Jobs may read several input files (e.g. the two sides of an SJMR join);
    map functions see the originating file as ``ctx.split.file``.
    """
    splits: List[InputSplit] = []
    entries: Dict[str, Any] = {}  # one namenode lookup per distinct file
    for file_name in job.input_files:
        entry = entries.get(file_name)
        if entry is None:
            entry = entries[file_name] = fs.get(file_name)
        splits.extend(
            InputSplit(file=file_name, block_index=i, block=block, key=i)
            for i, block in enumerate(entry.blocks)
        )
    return splits


def default_reader(split: InputSplit) -> Tuple[Any, List[Any]]:
    """Pass the split's records through untouched."""
    return split.key, list(split.block.records)


@dataclass
class JobResult:
    """Everything a driver needs to know about a finished job."""

    output: List[Any]
    counters: Counters
    map_tasks: List[TaskStats] = field(default_factory=list)
    reduce_tasks: List[TaskStats] = field(default_factory=list)
    makespan: float = 0.0

    @property
    def blocks_read(self) -> int:
        return self.counters.get(Counter.BLOCKS_READ)

    @property
    def shuffle_records(self) -> int:
        return self.counters.get(Counter.SHUFFLE_RECORDS)


# ----------------------------------------------------------------------
# Task bodies. These are module-level pure functions so the parallel
# executor can ship them to worker processes; the serial executor calls
# the very same code, which is what guarantees backend equivalence.
# ----------------------------------------------------------------------
def _noop_map(_key: Any, _records: Any, _ctx: Any) -> None:  # pragma: no cover
    """Placeholder map function for reduce-wave job shipping."""


def _shipped_job(job: Job, wave: str) -> Job:
    """A copy of ``job`` stripped to what one wave's tasks actually need.

    Driver-only hooks (splitter, reader, commit, partitioner) never run
    inside a task, so dropping them keeps per-chunk pickling small and —
    more importantly — lets a job with an unpicklable driver hook still
    run its waves in parallel.
    """
    return replace(
        job,
        splitter=None,
        reader=None,
        commit_fn=None,
        partitioner=default_partitioner,
        map_fn=job.map_fn if wave == "map" else _noop_map,
        combine_fn=job.combine_fn if wave == "map" else None,
        reduce_fn=job.reduce_fn if wave == "reduce" else None,
    )


def _combine(
    job: Job,
    counters: Counters,
    emitted: List[Tuple[Any, Any]],
) -> List[Tuple[Any, Any]]:
    """Run the combiner over one map task's output (grouped by key)."""
    groups: Dict[Any, List[Any]] = {}
    for k, v in emitted:
        groups.setdefault(k, []).append(v)
    ctx = ReduceContext(job, counters, task_index=-1)
    for k, values in groups.items():
        job.combine_fn(k, values, ctx)  # type: ignore[misc]
    counters.increment(Counter.COMBINE_INPUT_RECORDS, len(emitted))
    counters.increment(Counter.COMBINE_OUTPUT_RECORDS, len(ctx._emitted))
    # Combiner may also early-flush via write_output; preserve that.
    if ctx._output:
        raise RuntimeError(
            "combiners must not write final output; emit instead"
        )
    return ctx._emitted


def _run_map_chunk(payload):
    """Execute one chunk of map tasks; returns one result tuple per task.

    Each result is ``(task_id, records_in, counters_dict, emitted,
    output, seconds, events)``. Counters and trace events are per-task
    and merged by the driver in split order, so totals — and traces —
    cannot depend on task interleaving.
    """
    job, reader, splits = payload
    results = []
    for split in splits:
        counters = Counters()
        ctx = MapContext(job, counters, split)
        started = _task_clock()
        key, records = reader(split)
        job.map_fn(key, records, ctx)
        emitted = ctx._emitted
        raw_emitted = len(emitted)
        if job.combine_fn is not None and emitted:
            emitted = _combine(job, counters, emitted)
        elapsed = _task_clock() - started
        counters.increment(Counter.MAP_INPUT_RECORDS, len(records))
        counters.increment(Counter.MAP_OUTPUT_RECORDS, raw_emitted)
        results.append(
            (
                f"map-{split.block_index}",
                len(records),
                counters.as_dict(),
                emitted,
                ctx._output,
                elapsed,
                ctx._events,
            )
        )
    return results


def _run_reduce_chunk(payload):
    """Execute one chunk of reduce tasks; returns one tuple per task.

    Each result is ``(task_index, records_in, counters_dict, emitted,
    output, seconds, events)``.
    """
    job, tasks = payload
    results = []
    for task_index, items in tasks:
        counters = Counters()
        ctx = ReduceContext(job, counters, task_index)
        started = _task_clock()
        # Hadoop sorts by key before reducing; keep that contract for
        # reducers that rely on key order.
        for k, values in _sorted_items(items):
            job.reduce_fn(k, values, ctx)  # type: ignore[misc]
        elapsed = _task_clock() - started
        records_in = sum(len(values) for _, values in items)
        counters.increment(Counter.REDUCE_INPUT_RECORDS, records_in)
        counters.increment(
            Counter.REDUCE_OUTPUT_RECORDS, len(ctx._emitted) + len(ctx._output)
        )
        results.append(
            (
                task_index,
                records_in,
                counters.as_dict(),
                ctx._emitted,
                ctx._output,
                elapsed,
                ctx._events,
            )
        )
    return results


def _chunked(items: Sequence[Any], num_chunks: int) -> List[Sequence[Any]]:
    """Split ``items`` into at most ``num_chunks`` contiguous runs."""
    if not items:
        return []
    if num_chunks <= 1 or len(items) <= num_chunks:
        size = 1 if num_chunks > 1 else len(items)
    else:
        size = -(-len(items) // num_chunks)  # ceil division
    return [items[i : i + size] for i in range(0, len(items), size)]


class JobRunner:
    """Executes :class:`Job` instances against a :class:`FileSystem`.

    One runner holds one :class:`ClusterModel`; drivers that issue several
    jobs for one logical operation should sum the per-job makespans (plus
    any driver-side work) to report the operation's simulated time.

    ``workers`` selects the execution backend: 1 (the default) runs tasks
    serially in-process, >1 fans each wave out over that many worker
    processes. When ``workers`` is omitted, the ``REPRO_WORKERS``
    environment variable is consulted. Individual jobs may override the
    backend with ``Job.config["workers"]``.

    ``tracer``, ``metrics`` and ``history`` attach the observability
    layer: a :class:`~repro.observe.Tracer` receives job/wave/task spans,
    a :class:`~repro.observe.MetricsRegistry` accumulates counters plus
    task-duration and shuffle-bytes histograms, and a
    :class:`~repro.observe.JobHistory` retains every finished job. All
    three default to off/no-op, which costs nothing per job.
    """

    def __init__(
        self,
        fs: FileSystem,
        cluster: Optional[ClusterModel] = None,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        history: Optional[JobHistory] = None,
    ):
        self.fs = fs
        self.cluster = cluster or ClusterModel()
        self.executor = executor if executor is not None else make_executor(workers)
        self.tracer = tracer if tracer is not None else _NULL_TRACER
        self.metrics = metrics
        self.history = history
        #: Optional live progress sink (see repro.observe.progress). Holds
        #: an open stream, so it is attached per-invocation, never pickled.
        self.progress = None
        self._job_executors: Dict[int, Executor] = {}

    def __setstate__(self, state):
        # Workspaces pickled before the observability layer existed must
        # keep loading; fill the new attributes with their defaults.
        self.__dict__.update(state)
        self.__dict__.setdefault("tracer", _NULL_TRACER)
        self.__dict__.setdefault("metrics", None)
        self.__dict__.setdefault("history", None)
        self.__dict__.setdefault("progress", None)

    def set_tracer(self, tracer) -> None:
        """Swap the tracer (pass ``None`` to disable tracing)."""
        self.tracer = tracer if tracer is not None else _NULL_TRACER

    def set_progress(self, reporter) -> None:
        """Attach a progress reporter (pass ``None`` to detach)."""
        self.progress = reporter

    @property
    def workers(self) -> int:
        """Worker processes of the default backend (1 = serial)."""
        return self.executor.workers

    def set_workers(self, workers: Optional[int]) -> None:
        """Swap the default backend for one with ``workers`` processes."""
        self.close()
        self.executor = make_executor(workers)

    def close(self) -> None:
        """Shut down any worker pools this runner created."""
        self.executor.close()
        for executor in self._job_executors.values():
            executor.close()
        self._job_executors.clear()

    def _executor_for(self, job: Job) -> Executor:
        """The backend for ``job``: its config override, or the default."""
        override = job.config.get("workers")
        if override is None:
            return self.executor
        count = resolve_workers(override)
        if count == self.executor.workers:
            return self.executor
        cached = self._job_executors.get(count)
        if cached is None:
            cached = self._job_executors[count] = make_executor(count)
        return cached

    # ------------------------------------------------------------------
    def run(self, job: Job) -> JobResult:
        """Run ``job`` to completion and return its result."""
        tracer = self.tracer
        if self.progress is not None:
            self.progress.job_started(job.name, list(job.input_files))
        with tracer.span(
            f"job:{job.name}",
            kind="job",
            files=list(job.input_files),
            reducers=job.num_reducers,
        ) as job_span:
            result = self._run_traced(job, job_span)
        if self.progress is not None:
            self.progress.job_finished(job.name, result)
        if self.metrics is not None:
            self._record_metrics(result)
        if self.history is not None:
            self.history.record(
                job.name,
                result,
                cost=self.cluster.job_cost(
                    result.map_tasks,
                    result.reduce_tasks,
                    result.shuffle_records,
                ),
            )
        return result

    def _run_traced(self, job: Job, job_span) -> JobResult:
        counters = Counters()
        splitter = job.splitter or default_splitter
        reader = job.reader or default_reader
        executor = self._executor_for(job)
        tracer = self.tracer

        entries: Dict[str, Any] = {}
        for file_name in job.input_files:
            entry = entries.get(file_name)
            if entry is None:
                entry = entries[file_name] = self.fs.get(file_name)
            counters.increment(Counter.BLOCKS_TOTAL, entry.num_blocks)

        with tracer.span("split", kind="phase") as split_span:
            splits = splitter(self.fs, job)
            counters.increment(Counter.BLOCKS_READ, len(splits))
            pruned = counters.get(Counter.BLOCKS_TOTAL) - len(splits)
            if pruned > 0:
                counters.increment(Counter.BLOCKS_PRUNED, pruned)
            split_span.set("splits", len(splits))
            split_span.set("blocks_total", counters.get(Counter.BLOCKS_TOTAL))
            split_span.set("blocks_pruned", max(0, pruned))

        output: List[Any] = []
        map_stats, intermediate = self._run_map_wave(
            job, splits, reader, counters, output, executor
        )

        reduce_stats: List[TaskStats] = []
        shuffle_records = 0
        if job.reduce_fn is not None:
            shuffle_records = len(intermediate)
            shuffle_bytes = _RecordSizer().total(intermediate)
            counters.increment(Counter.SHUFFLE_RECORDS, shuffle_records)
            counters.increment(Counter.SHUFFLE_BYTES, shuffle_bytes)
            tracer.event(
                "shuffle", records=shuffle_records, bytes=shuffle_bytes
            )
            reduce_stats = self._run_reduce_wave(
                job, intermediate, counters, output, executor
            )
        else:
            # Map-only job: emitted pairs join the direct output.
            output.extend(v for _, v in intermediate)

        if job.commit_fn is not None:
            with tracer.span("commit", kind="phase") as commit_span:
                commit_ctx = CommitContext(job, counters, output)
                job.commit_fn(commit_ctx)
                commit_span.set("output_records", len(output))

        counters.increment(Counter.OUTPUT_RECORDS, len(output))
        job_span.set("output_records", len(output))
        makespan = self.cluster.job_makespan(
            map_stats, reduce_stats, shuffle_records
        )
        return JobResult(
            output=output,
            counters=counters,
            map_tasks=map_stats,
            reduce_tasks=reduce_stats,
            makespan=makespan,
        )

    def _record_metrics(self, result: JobResult) -> None:
        """Fold one finished job into the metrics registry."""
        metrics = self.metrics
        metrics.inc("JOBS_TOTAL")
        metrics.merge_counters(result.counters)
        duration = metrics.histogram(
            "task_duration_seconds", TASK_DURATION_BUCKETS
        )
        for task in result.map_tasks:
            duration.observe(task.seconds)
        for task in result.reduce_tasks:
            duration.observe(task.seconds)
        if result.reduce_tasks:
            metrics.observe(
                "shuffle_bytes",
                result.counters.get(Counter.SHUFFLE_BYTES),
                SHUFFLE_BYTES_BUCKETS,
            )
        metrics.set_gauge("last_job_makespan_s", result.makespan)

    # ------------------------------------------------------------------
    def _run_map_wave(
        self,
        job: Job,
        splits: List[InputSplit],
        reader,
        counters: Counters,
        output: List[Any],
        executor: Executor,
    ) -> Tuple[List[TaskStats], List[Tuple[Any, Any]]]:
        intermediate: List[Tuple[Any, Any]] = []
        stats: List[TaskStats] = []
        counters.increment(Counter.MAP_TASKS, len(splits))
        if not splits:
            return stats, intermediate

        tracer = self.tracer
        progress = self.progress
        if progress is not None:
            progress.wave_started(job.name, "map", len(splits))
        with tracer.span("wave:map", kind="wave", tasks=len(splits)) as wave:
            shipped = _shipped_job(job, wave="map")
            num_chunks = (
                executor.workers * CHUNKS_PER_WORKER
                if executor.workers > 1
                else 1
            )
            payloads = [
                (shipped, reader, chunk)
                for chunk in _chunked(splits, num_chunks)
            ]
            chunk_results = executor.map_chunks(_run_map_chunk, payloads)
            self._trace_dispatch(executor)
            cursor = wave.start
            for chunk_result in chunk_results:
                for task_id, records_in, cdict, emitted, out, secs, events in (
                    chunk_result
                ):
                    counters.merge_dict(cdict)
                    stats.append(
                        TaskStats(
                            task_id=task_id,
                            records_in=records_in,
                            records_out=len(emitted) + len(out),
                            seconds=secs,
                        )
                    )
                    if tracer.enabled:
                        cursor = self._trace_task(
                            task_id, records_in, stats[-1].records_out,
                            secs, events, cursor,
                        )
                    if progress is not None:
                        progress.task_finished(
                            "map", len(stats), len(splits),
                            records_in, stats[-1].records_out,
                        )
                    intermediate.extend(emitted)
                    output.extend(out)
        return stats, intermediate

    def _run_reduce_wave(
        self,
        job: Job,
        intermediate: List[Tuple[Any, Any]],
        counters: Counters,
        output: List[Any],
        executor: Executor,
    ) -> List[TaskStats]:
        num_reducers = max(1, job.num_reducers)
        buckets: List[Dict[Any, List[Any]]] = [{} for _ in range(num_reducers)]
        for k, v in intermediate:
            index = job.partitioner(k, num_reducers) if num_reducers > 1 else 0
            buckets[index].setdefault(k, []).append(v)

        tasks = [
            (task_index, list(bucket.items()))
            for task_index, bucket in enumerate(buckets)
            if bucket
        ]
        counters.increment(Counter.REDUCE_TASKS, len(tasks))
        stats: List[TaskStats] = []
        if not tasks:
            return stats

        tracer = self.tracer
        progress = self.progress
        if progress is not None:
            progress.wave_started(job.name, "reduce", len(tasks))
        with tracer.span("wave:reduce", kind="wave", tasks=len(tasks)) as wave:
            shipped = _shipped_job(job, wave="reduce")
            num_chunks = (
                executor.workers * CHUNKS_PER_WORKER
                if executor.workers > 1
                else 1
            )
            payloads = [
                (shipped, chunk) for chunk in _chunked(tasks, num_chunks)
            ]
            chunk_results = executor.map_chunks(_run_reduce_chunk, payloads)
            self._trace_dispatch(executor)
            cursor = wave.start
            for chunk_result in chunk_results:
                for task_index, records_in, cdict, emitted, out, secs, events in (
                    chunk_result
                ):
                    counters.merge_dict(cdict)
                    stats.append(
                        TaskStats(
                            task_id=f"reduce-{task_index}",
                            records_in=records_in,
                            records_out=len(emitted) + len(out),
                            seconds=secs,
                        )
                    )
                    if tracer.enabled:
                        cursor = self._trace_task(
                            f"reduce-{task_index}", records_in,
                            stats[-1].records_out, secs, events, cursor,
                        )
                    if progress is not None:
                        progress.task_finished(
                            "reduce", len(stats), len(tasks),
                            records_in, stats[-1].records_out,
                        )
                    # Reduce emit() goes to the job output (no later stage).
                    output.extend(v for _, v in emitted)
                    output.extend(out)
        return stats

    # ------------------------------------------------------------------
    # Trace plumbing. Task spans are laid out on a synthetic timeline —
    # cumulative CPU seconds from the wave's start, in split/bucket
    # order — so a wave reads like a schedule and serial/parallel runs
    # produce identical span sequences (timestamps are normalised away
    # on comparison; see repro.observe.trace).
    # ------------------------------------------------------------------
    def _trace_task(
        self, task_id, records_in, records_out, secs, events, cursor
    ) -> float:
        span_id = self.tracer.add_span(
            f"task:{task_id}",
            "task",
            cursor,
            cursor + secs,
            records_in=records_in,
            records_out=records_out,
        )
        for event in events:
            self.tracer.event(
                event["name"], parent_id=span_id, **event["attrs"]
            )
        return cursor + secs

    def _trace_dispatch(self, executor: Executor) -> None:
        """Record how the wave was dispatched, as volatile diagnostics.

        Backend, worker count and chunking legitimately differ between
        serial and parallel runs, so this event is flagged volatile and
        dropped by trace normalisation — visible in raw traces, excluded
        from the determinism contract.
        """
        if not self.tracer.enabled:
            return
        info = executor.last_dispatch or {}
        self.tracer.event(
            "dispatch",
            kind="dispatch",
            volatile=True,
            backend=executor.name,
            workers=executor.workers,
            **info,
        )


def _sorted_items(
    items: List[Tuple[Any, List[Any]]]
) -> List[Tuple[Any, List[Any]]]:
    """Key-grouped items in key order when comparable, as given otherwise.

    Combiner and map output groups usually arrive already key-sorted (or
    nearly so); the linear pre-scan skips the re-sort — and its copy — in
    that common case.
    """
    try:
        for i in range(len(items) - 1):
            if items[i + 1][0] < items[i][0]:
                return sorted(items, key=lambda kv: kv[0])
        return items
    except TypeError:
        return items


def _sorted_keys(bucket: Dict[Any, List[Any]]) -> List[Any]:
    """Keys in sorted order when comparable, insertion order otherwise."""
    keys = list(bucket.keys())
    try:
        return sorted(keys)
    except TypeError:
        return keys
