"""The MapReduce execution engine.

Jobs run as two waves — map, then reduce — and each wave is dispatched
through a pluggable :class:`~repro.mapreduce.executor.Executor`: serially
in-process (the default) or across a pool of worker processes. To keep the
two backends bit-identical, tasks are pure functions: each task builds its
own :class:`Counters`, and the driver recombines task results **in split /
bucket order**, so output lists and counter values never depend on which
backend (or how many workers) ran the wave.

Task durations are measured with ``time.process_time`` — per-task CPU
seconds, not wall-clock — so the simulated makespan produced by the
:class:`ClusterModel` is unaffected by real parallelism (worker processes
time their own CPU, oversubscription and scheduling noise excluded).

Waves are *fault tolerant*: every task runs as one or more **attempts**.
An attempt that raises, exceeds the per-attempt timeout, or returns an
invalid result is retried with capped exponential backoff (simulated —
charged to the makespan, never slept) up to ``max_attempts``; only then
does the job fail, re-raising the original error. Because retried tasks
still merge in split/bucket order and only the winning attempt's output
and counters are used, job results stay bit-identical to a clean run.
With ``speculative=True``, tasks slower than ``slow_task_factor ×`` the
wave median get a backup attempt and the faster copy wins. The
:mod:`repro.mapreduce.faults` harness injects deterministic failures for
testing all of this.
"""

from __future__ import annotations

import pickle
import sys
import time
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.mapreduce.checkpoint import (
    CancellationToken,
    CheckpointManager,
    DriverCrashed,
    check_active,
    set_active_token,
)
from repro.mapreduce.cluster import ClusterModel, TaskAttempt, TaskStats
from repro.mapreduce.counters import Counter, Counters
from repro.mapreduce.executor import (
    CHUNKS_PER_WORKER,
    Executor,
    make_executor,
    resolve_workers,
)
from repro.mapreduce.faults import (
    DEFAULT_HANG_SECONDS,
    FaultPlan,
    InjectedFault,
    RemoteTaskError,
    TaskCorrupted,
    TaskTimeoutError,
    WorkerKilled,
    in_worker_process,
    resolve_faults,
    retry_backoff,
)
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.job import (
    CommitContext,
    Job,
    MapContext,
    ReduceContext,
    default_partitioner,
)
from repro.mapreduce.types import InputSplit
from repro.observe.history import JobHistory
from repro.observe.metrics import (
    BACKOFF_SECONDS_BUCKETS,
    SHUFFLE_BYTES_BUCKETS,
    TASK_DURATION_BUCKETS,
    MetricsRegistry,
)
from repro.observe import profile as _profiler
from repro.observe.trace import NullTracer

#: Per-task clock: CPU seconds of the calling process. Worker processes
#: time their own CPU, so real parallelism cannot corrupt the simulated
#: makespan (wall-clock in an oversubscribed pool would).
_task_clock = time.process_time

#: Shared no-op tracer: tracing must cost nothing until enabled.
_NULL_TRACER = NullTracer()

#: Hadoop's ``mapreduce.map.maxattempts`` default: a task may run this
#: many times in total before the job fails.
DEFAULT_MAX_ATTEMPTS = 4

#: A task is a straggler when slower than this multiple of the wave
#: median (Hadoop's speculative-execution heuristic).
DEFAULT_SLOW_TASK_FACTOR = 2.0

#: Below this many tasks a median is meaningless; no speculation.
MIN_SPECULATION_TASKS = 3

#: Marker returned by an attempt the fault plan scripted to corrupt —
#: deliberately not a valid task-result tuple.
_CORRUPTED_RESULT = "\x00corrupted-task-result\x00"


class _RecordSizer:
    """Memoised record sizing: one ``sys.getsizeof`` per record shape.

    Estimates the rough on-the-wire size of shuffled records for the
    shuffle-bytes counter. Shuffled records are overwhelmingly instances
    of a handful of types (tuples of a few fixed layouts, geometry
    shapes), so sizing one sample per (type, length) bucket replaces a
    per-record ``sys.getsizeof`` call with a dict lookup. Strings and
    bytes keep their exact length.
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: Dict[Any, int] = {}

    def size(self, record: Any) -> int:
        if isinstance(record, (str, bytes)):
            return len(record)
        if isinstance(record, (tuple, list)):
            key: Any = (type(record), len(record))
        else:
            key = type(record)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._cache[key] = max(sys.getsizeof(record), 16)
        return cached

    def total(self, pairs: Sequence[Tuple[Any, Any]]) -> int:
        size = self.size
        return sum(size(v) for _, v in pairs)


def default_splitter(fs: FileSystem, job: Job) -> List[InputSplit]:
    """One split per block, key = block index (plain Hadoop behaviour).

    Jobs may read several input files (e.g. the two sides of an SJMR join);
    map functions see the originating file as ``ctx.split.file``.
    """
    splits: List[InputSplit] = []
    entries: Dict[str, Any] = {}  # one namenode lookup per distinct file
    for file_name in job.input_files:
        entry = entries.get(file_name)
        if entry is None:
            entry = entries[file_name] = fs.get(file_name)
        splits.extend(
            InputSplit(file=file_name, block_index=i, block=block, key=i)
            for i, block in enumerate(entry.blocks)
        )
    return splits


def default_reader(split: InputSplit) -> Tuple[Any, List[Any]]:
    """Pass the split's records through untouched."""
    return split.key, list(split.block.records)


@dataclass
class JobResult:
    """Everything a driver needs to know about a finished job."""

    output: List[Any]
    counters: Counters
    map_tasks: List[TaskStats] = field(default_factory=list)
    reduce_tasks: List[TaskStats] = field(default_factory=list)
    makespan: float = 0.0
    #: Fault-tolerance activity, zero-entries omitted: ``retries``,
    #: ``timeouts``, ``corrupt``, ``worker_lost``, ``crashes``,
    #: ``speculative``, ``faults_injected``, ``backoff_s``,
    #: ``pool_rebuilds``. Empty for a clean run. Diagnostics only —
    #: never part of the output/counters determinism contract
    #: (``pool_rebuilds`` in particular is backend-dependent).
    fault_summary: Dict[str, float] = field(default_factory=dict)
    #: Phase-time attribution (``{"map/kernel": {"s": .., "n": ..}}``),
    #: populated only when the job ran with profiling on. Wall-clock —
    #: like ``fault_summary``, diagnostics outside the determinism
    #: contract.
    phase_profile: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def blocks_read(self) -> int:
        return self.counters.get(Counter.BLOCKS_READ)

    @property
    def shuffle_records(self) -> int:
        return self.counters.get(Counter.SHUFFLE_RECORDS)

    @property
    def tasks_retried(self) -> int:
        return int(self.fault_summary.get("retries", 0))

    @property
    def tasks_speculative(self) -> int:
        return int(self.fault_summary.get("speculative", 0))

    @property
    def tasks_timed_out(self) -> int:
        return int(self.fault_summary.get("timeouts", 0))


@dataclass
class _WavePolicy:
    """Resolved fault-tolerance and profiling knobs for one job's waves."""

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    task_timeout: Optional[float] = None
    speculative: bool = False
    slow_task_factor: float = DEFAULT_SLOW_TASK_FACTOR
    faults: Optional[FaultPlan] = None
    profile: bool = False
    #: Numeric event-log threshold shipped to tasks (None = log off).
    log_level: Optional[int] = None


# ----------------------------------------------------------------------
# Task bodies. These are module-level pure functions so the parallel
# executor can ship them to worker processes; the serial executor calls
# the very same code, which is what guarantees backend equivalence.
#
# Each chunk is a list of (wave_index, attempt, item) triples, and each
# task yields a *marker*:
#
#   ("ok",  wave_index, attempt, data)                      — data is the
#       usual 8-tuple (task_id, records_in, counters_dict, emitted,
#       output, seconds, events, phases);
#   ("err", wave_index, attempt, outcome, error, seconds)   — the attempt
#       failed; ``error`` is the exception (wrapped if unpicklable).
#
# Exceptions never propagate out of a chunk: the driver's wave supervisor
# decides whether an attempt is retried or fails the job.
# ----------------------------------------------------------------------
def _noop_map(_key: Any, _records: Any, _ctx: Any) -> None:  # pragma: no cover
    """Placeholder map function for reduce-wave job shipping."""


def _shipped_job(
    job: Job, wave: str, faults: Optional[FaultPlan] = None,
    profile: bool = False, log_level: Optional[int] = None,
) -> Job:
    """A copy of ``job`` stripped to what one wave's tasks actually need.

    Driver-only hooks (splitter, reader, commit, partitioner) never run
    inside a task, so dropping them keeps per-chunk pickling small and —
    more importantly — lets a job with an unpicklable driver hook still
    run its waves in parallel. The resolved fault plan, the profiling
    decision and the event-log threshold ride along in the config so
    worker processes consult the same script as the driver.
    """
    config = job.config
    if (
        faults is not None
        or config.get("faults") is not None
        or profile != bool(config.get("profile", False))
        or log_level != config.get("log_level")
    ):
        config = {k: v for k, v in config.items() if k != "faults"}
        if faults is not None:
            config["faults"] = faults
        config["profile"] = profile
        config.pop("log_level", None)
        if log_level is not None:
            config["log_level"] = log_level
    return replace(
        job,
        splitter=None,
        reader=None,
        commit_fn=None,
        partitioner=default_partitioner,
        map_fn=job.map_fn if wave == "map" else _noop_map,
        combine_fn=job.combine_fn if wave == "map" else None,
        reduce_fn=job.reduce_fn if wave == "reduce" else None,
        config=config,
    )


def _combine(
    job: Job,
    counters: Counters,
    emitted: List[Tuple[Any, Any]],
) -> List[Tuple[Any, Any]]:
    """Run the combiner over one map task's output (grouped by key)."""
    groups: Dict[Any, List[Any]] = {}
    for k, v in emitted:
        groups.setdefault(k, []).append(v)
    ctx = ReduceContext(job, counters, task_index=-1)
    for k, values in groups.items():
        job.combine_fn(k, values, ctx)  # type: ignore[misc]
    counters.increment(Counter.COMBINE_INPUT_RECORDS, len(emitted))
    counters.increment(Counter.COMBINE_OUTPUT_RECORDS, len(ctx._emitted))
    # Combiner may also early-flush via write_output; preserve that.
    if ctx._output:
        raise RuntimeError(
            "combiners must not write final output; emit instead"
        )
    return ctx._emitted


def _map_task_data(job: Job, reader, split: InputSplit):
    """Execute one map task; returns its 8-tuple result."""
    counters = Counters()
    ctx = MapContext(job, counters, split)
    with _profiler.task_scope(job.config.get("profile", False)) as phases:
        started = _task_clock()
        key, records = reader(split)
        job.map_fn(key, records, ctx)
        emitted = ctx._emitted
        raw_emitted = len(emitted)
        if job.combine_fn is not None and emitted:
            emitted = _combine(job, counters, emitted)
        elapsed = _task_clock() - started
    counters.increment(Counter.MAP_INPUT_RECORDS, len(records))
    counters.increment(Counter.MAP_OUTPUT_RECORDS, raw_emitted)
    return (
        f"map-{split.block_index}",
        len(records),
        counters.as_dict(),
        emitted,
        ctx._output,
        elapsed,
        ctx._events,
        dict(phases),
    )


def _reduce_task_data(job: Job, task_index: int, items):
    """Execute one reduce task; returns its 8-tuple result."""
    counters = Counters()
    ctx = ReduceContext(job, counters, task_index)
    with _profiler.task_scope(job.config.get("profile", False)) as phases:
        started = _task_clock()
        # Hadoop sorts by key before reducing; keep that contract for
        # reducers that rely on key order.
        for k, values in _sorted_items(items):
            job.reduce_fn(k, values, ctx)  # type: ignore[misc]
        elapsed = _task_clock() - started
    records_in = sum(len(values) for _, values in items)
    counters.increment(Counter.REDUCE_INPUT_RECORDS, records_in)
    counters.increment(
        Counter.REDUCE_OUTPUT_RECORDS, len(ctx._emitted) + len(ctx._output)
    )
    return (
        task_index,
        records_in,
        counters.as_dict(),
        ctx._emitted,
        ctx._output,
        elapsed,
        ctx._events,
        dict(phases),
    )


def _run_attempt(job: Job, wave: str, index: int, attempt: int, body):
    """One task attempt, fault plan consulted, exceptions captured.

    A scripted ``kill`` terminates the worker process for real
    (exercising pool recovery); in the driver process — the serial
    backend, or a pool fallback — it degrades to a ``worker-lost``
    failure so every backend records the same attempt history.
    """
    plan = job.config.get("faults")
    spec = plan.lookup(wave, index, attempt) if plan is not None else None
    if spec is not None:
        if spec.kind == "kill":
            if in_worker_process():
                import os

                os._exit(137)
            error = WorkerKilled(
                f"injected worker kill at {wave}[{index}] attempt {attempt}"
            )
            return ("err", index, attempt, "worker-lost", error, 0.0)
        if spec.kind == "crash":
            error = InjectedFault(
                f"injected crash at {wave}[{index}] attempt {attempt}"
            )
            return ("err", index, attempt, "crash", error, 0.0)
    try:
        data = body()
    except Exception as exc:  # noqa: BLE001 - supervisor decides the fate
        return ("err", index, attempt, "crash", _shippable_error(exc), 0.0)
    if spec is not None:
        if spec.kind == "hang":
            # Inflate the CPU charge: the attempt "ran" for spec.seconds
            # longer, which trips per-attempt timeouts and makes the
            # task a straggler for speculation.
            data = data[:5] + (data[5] + spec.seconds,) + data[6:]
        elif spec.kind == "corrupt":
            return ("ok", index, attempt, _CORRUPTED_RESULT)
    return ("ok", index, attempt, data)


def _shippable_error(exc: Exception) -> Exception:
    """``exc`` if it can cross a process boundary, else a wrapper."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return RemoteTaskError(f"{type(exc).__name__}: {exc}")


def _run_map_chunk(payload):
    """Execute one chunk of map-task attempts; one marker per attempt.

    The ``check_active`` poll is the cooperative-cancellation task
    boundary: in the driver process (serial backend, pool fallbacks) it
    raises between tasks when a signal or deadline asked the run to
    stop; worker processes never arm a token, so there it is a no-op.
    """
    job, reader, tasks = payload
    markers = []
    for index, attempt, split in tasks:
        check_active()
        markers.append(
            _run_attempt(
                job, "map", index, attempt,
                lambda: _map_task_data(job, reader, split),
            )
        )
    return markers


def _run_reduce_chunk(payload):
    """Execute one chunk of reduce-task attempts; one marker per attempt."""
    job, tasks = payload
    markers = []
    for index, attempt, (task_index, items) in tasks:
        check_active()
        markers.append(
            _run_attempt(
                job, "reduce", index, attempt,
                lambda: _reduce_task_data(job, task_index, items),
            )
        )
    return markers


def _valid_task_data(data: Any) -> bool:
    """Driver-side result validation: is this a well-formed task result?

    Catches corrupted results (injected or real) before they can poison
    the merge; an invalid result fails the attempt, which is then
    retried like any other failure.
    """
    return (
        isinstance(data, tuple)
        and len(data) == 8
        and isinstance(data[1], int)
        and isinstance(data[2], dict)
        and isinstance(data[3], list)
        and isinstance(data[4], list)
        and isinstance(data[5], float)
        and isinstance(data[6], list)
        and isinstance(data[7], dict)
    )


def _chunked(items: Sequence[Any], num_chunks: int) -> List[Sequence[Any]]:
    """Split ``items`` into at most ``num_chunks`` contiguous runs."""
    if not items:
        return []
    if num_chunks <= 1 or len(items) <= num_chunks:
        size = 1 if num_chunks > 1 else len(items)
    else:
        size = -(-len(items) // num_chunks)  # ceil division
    return [items[i : i + size] for i in range(0, len(items), size)]


class JobRunner:
    """Executes :class:`Job` instances against a :class:`FileSystem`.

    One runner holds one :class:`ClusterModel`; drivers that issue several
    jobs for one logical operation should sum the per-job makespans (plus
    any driver-side work) to report the operation's simulated time.

    ``workers`` selects the execution backend: 1 (the default) runs tasks
    serially in-process, >1 fans each wave out over that many worker
    processes. When ``workers`` is omitted, the ``REPRO_WORKERS``
    environment variable is consulted. Individual jobs may override the
    backend with ``Job.config["workers"]``.

    ``tracer``, ``metrics`` and ``history`` attach the observability
    layer: a :class:`~repro.observe.Tracer` receives job/wave/task spans,
    a :class:`~repro.observe.MetricsRegistry` accumulates counters plus
    task-duration and shuffle-bytes histograms, and a
    :class:`~repro.observe.JobHistory` retains every finished job. All
    three default to off/no-op, which costs nothing per job.

    Fault tolerance is controlled by ``max_attempts`` (total tries per
    task before the job fails), ``task_timeout`` (per-attempt CPU-second
    budget), ``speculative`` / ``slow_task_factor`` (backup attempts for
    stragglers) and ``faults`` (a :class:`FaultPlan`, a spec string, or
    ``None`` to defer to ``$REPRO_FAULTS``). Jobs may override each knob
    via ``Job.config``. Fault plans are per-invocation chaos tooling and
    are never pickled with a workspace.
    """

    def __init__(
        self,
        fs: FileSystem,
        cluster: Optional[ClusterModel] = None,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        history: Optional[JobHistory] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        task_timeout: Optional[float] = None,
        speculative: bool = False,
        slow_task_factor: float = DEFAULT_SLOW_TASK_FACTOR,
        faults=None,
        profile: Optional[bool] = None,
    ):
        self.fs = fs
        self.cluster = cluster or ClusterModel()
        self.executor = executor if executor is not None else make_executor(workers)
        self.tracer = tracer if tracer is not None else _NULL_TRACER
        self.metrics = metrics
        self.history = history
        self.max_attempts = max(1, int(max_attempts))
        self.task_timeout = task_timeout
        self.speculative = bool(speculative)
        self.slow_task_factor = float(slow_task_factor)
        self.faults = resolve_faults(faults)
        #: Profiling default: True/False forces it; None defers to
        #: ``$REPRO_PROFILE`` (read per job, so tests can flip it).
        self.profile = profile
        #: Optional telemetry scrape log (see repro.observe.telemetry).
        #: Plain data — unlike the tracer/progress hooks it *is* pickled,
        #: so the time-series accumulates across workspace invocations.
        self.telemetry = None
        #: Optional structured event log (see repro.observe.log). Plain
        #: data, ring-buffer bounded, pickled like the telemetry log so
        #: the flight recorder survives across workspace invocations.
        self.eventlog = None
        #: Optional live progress sink (see repro.observe.progress). Holds
        #: an open stream, so it is attached per-invocation, never pickled.
        self.progress = None
        self._job_executors: Dict[int, Executor] = {}
        #: Storage faults from the plan that already fired (fire-once).
        self._storage_fired: set = set()
        #: Repair seconds from faults fired during a driver-side read
        #: (see :meth:`verify_driver_read`), charged to the next job.
        self._pending_repair_s = 0.0
        #: Crash-consistency attachments (see repro.mapreduce.checkpoint):
        #: a CheckpointManager journaling every wave boundary, and a
        #: CancellationToken polled at task/wave/round boundaries. Both
        #: are per-invocation and never pickled with a workspace.
        self.checkpoint: Optional[CheckpointManager] = None
        self.cancellation: Optional[CancellationToken] = None
        #: Global wave ordinal of this invocation (the checkpoint and
        #: driver-fault key): wave 0 is the first wave dispatched, across
        #: jobs and rounds.
        self._wave_ordinal = 0
        #: Driver faults that already fired, as (wave, plan-pos) pairs.
        self._driver_fired: set = set()

    def __getstate__(self):
        state = self.__dict__.copy()
        # Per-invocation attachments: the progress reporter holds an open
        # stream, and fault plans are chaos tooling — neither belongs in
        # a persisted workspace.
        state["progress"] = None
        state["faults"] = None
        state["_storage_fired"] = set()
        state["_pending_repair_s"] = 0.0
        state["checkpoint"] = None
        state["cancellation"] = None
        state["_wave_ordinal"] = 0
        state["_driver_fired"] = set()
        return state

    def __setstate__(self, state):
        # Workspaces pickled before the observability / fault-tolerance
        # layers existed must keep loading; fill in the defaults.
        self.__dict__.update(state)
        self.__dict__.setdefault("tracer", _NULL_TRACER)
        self.__dict__.setdefault("metrics", None)
        self.__dict__.setdefault("history", None)
        self.__dict__.setdefault("progress", None)
        self.__dict__.setdefault("max_attempts", DEFAULT_MAX_ATTEMPTS)
        self.__dict__.setdefault("task_timeout", None)
        self.__dict__.setdefault("speculative", False)
        self.__dict__.setdefault("slow_task_factor", DEFAULT_SLOW_TASK_FACTOR)
        self.__dict__.setdefault("faults", None)
        self.__dict__.setdefault("_storage_fired", set())
        self.__dict__.setdefault("_pending_repair_s", 0.0)
        self.__dict__.setdefault("profile", None)
        self.__dict__.setdefault("telemetry", None)
        self.__dict__.setdefault("eventlog", None)
        self.__dict__.setdefault("checkpoint", None)
        self.__dict__.setdefault("cancellation", None)
        self.__dict__.setdefault("_wave_ordinal", 0)
        self.__dict__.setdefault("_driver_fired", set())

    def set_tracer(self, tracer) -> None:
        """Swap the tracer (pass ``None`` to disable tracing)."""
        self.tracer = tracer if tracer is not None else _NULL_TRACER

    def set_progress(self, reporter) -> None:
        """Attach a progress reporter (pass ``None`` to detach)."""
        self.progress = reporter

    def set_faults(self, faults) -> None:
        """Attach a fault plan (a :class:`FaultPlan`, spec string or None)."""
        self.faults = resolve_faults(faults)
        self._storage_fired = set()
        self._driver_fired = set()
        self._pending_repair_s = 0.0

    def set_checkpoint(self, manager: Optional[CheckpointManager]) -> None:
        """Arm (or disarm) wave checkpointing for the coming command.

        Resets the global wave ordinal: the journal keys waves by their
        position in *one* command's wave sequence. A manager loaded from
        an interrupted run seeds the driver-fault fire-once set from its
        manifest, so resume never re-fires the crash that killed it.
        """
        self.checkpoint = manager
        self._wave_ordinal = 0
        if manager is not None:
            self._driver_fired |= manager.fired

    def set_cancellation(self, token: Optional[CancellationToken]) -> None:
        """Attach the token polled at task/wave/round boundaries."""
        self.cancellation = token

    def round_boundary(self, operation: str, round_index: int) -> None:
        """Driver-side round boundary of a multi-round operation.

        Wave checkpoints already cover every job inside a round; this
        hook adds the round-granular cancellation point and flight-record
        entry, so a deadline or signal stops *between* rounds even when
        the individual waves are tiny.
        """
        if self.eventlog is not None:
            self.eventlog.emit(
                "debug", "runtime", "round-boundary",
                op=operation, round=round_index,
            )
        if self.tracer.enabled:
            self.tracer.event(
                "round-boundary", kind="checkpoint", volatile=True,
                op=operation, round=round_index,
            )
        self._check_cancel()

    def _check_cancel(self) -> None:
        """Boundary poll: raise if a cancel or deadline asked us to stop."""
        token = self.cancellation
        if token is not None:
            token.check()

    @property
    def workers(self) -> int:
        """Worker processes of the default backend (1 = serial)."""
        return self.executor.workers

    def set_workers(self, workers: Optional[int]) -> None:
        """Swap the default backend for one with ``workers`` processes."""
        self.close()
        self.executor = make_executor(workers)

    def close(self) -> None:
        """Shut down any worker pools this runner created."""
        self.executor.close()
        for executor in self._job_executors.values():
            executor.close()
        self._job_executors.clear()

    def _executor_for(self, job: Job) -> Executor:
        """The backend for ``job``: its config override, or the default."""
        override = job.config.get("workers")
        if override is None:
            return self.executor
        count = resolve_workers(override)
        if count == self.executor.workers:
            return self.executor
        cached = self._job_executors.get(count)
        if cached is None:
            cached = self._job_executors[count] = make_executor(count)
        return cached

    def _policy_for(self, job: Job) -> _WavePolicy:
        """Fault-tolerance knobs for ``job``: config overrides runner."""
        cfg = job.config
        faults = self.faults
        if "faults" in cfg:
            raw = cfg["faults"]
            if raw is None:
                faults = None
            elif isinstance(raw, FaultPlan):
                faults = raw
            else:
                faults = FaultPlan.parse(raw)
        profile = cfg.get("profile")
        if profile is None:
            profile = _profiler.resolve(self.profile)
        log = self.eventlog
        return _WavePolicy(
            max_attempts=max(1, int(cfg.get("max_attempts", self.max_attempts))),
            task_timeout=cfg.get("task_timeout", self.task_timeout),
            speculative=bool(cfg.get("speculative", self.speculative)),
            slow_task_factor=float(
                cfg.get("slow_task_factor", self.slow_task_factor)
            ),
            faults=faults,
            profile=bool(profile),
            log_level=log.threshold if log is not None else None,
        )

    # ------------------------------------------------------------------
    def run(self, job: Job) -> JobResult:
        """Run ``job`` to completion and return its result.

        When a cancellation token is attached it is installed as the
        process-wide active token for the duration of the job, so the
        executors' task-boundary polls observe it (see
        :func:`repro.mapreduce.checkpoint.check_active`).
        """
        self._check_cancel()
        token = self.cancellation
        if token is None:
            return self._run_job(job)
        set_active_token(token)
        try:
            return self._run_job(job)
        finally:
            set_active_token(None)

    def _run_job(self, job: Job) -> JobResult:
        tracer = self.tracer
        log = self.eventlog
        repair_s = self._apply_storage_faults() + self._pending_repair_s
        self._pending_repair_s = 0.0
        if self.telemetry is not None:
            self.telemetry.scrape("job-start", self.metrics, job=job.name)
        if self.progress is not None:
            self.progress.job_started(job.name, list(job.input_files))
        if log is not None:
            log.emit(
                "info", "runtime", "job-started", job=job.name,
                files=",".join(job.input_files), reducers=job.num_reducers,
            )
        with tracer.span(
            f"job:{job.name}",
            kind="job",
            files=list(job.input_files),
            reducers=job.num_reducers,
        ) as job_span:
            result = self._run_traced(job, job_span)
        if repair_s > 0:
            # Re-replication after a datanode loss competes with the job
            # for cluster I/O; charge it to this job's simulated time.
            result.makespan += repair_s
            result.fault_summary["storage_repair_s"] = repair_s
        if log is not None:
            log.emit(
                "info", "runtime", "job-finished", job=job.name,
                output_records=len(result.output),
                tasks=len(result.map_tasks) + len(result.reduce_tasks),
            )
            # The makespan derives from measured CPU seconds: volatile.
            log.emit(
                "debug", "runtime", "job-timing", job=job.name,
                volatile=True, makespan_s=round(result.makespan, 6),
            )
        if self.progress is not None:
            self.progress.job_finished(job.name, result)
        if self.metrics is not None:
            self._record_metrics(result)
        if self.history is not None:
            self.history.record(
                job.name,
                result,
                cost=self.cluster.job_cost(
                    result.map_tasks,
                    result.reduce_tasks,
                    result.shuffle_records,
                ),
                input_files=list(job.input_files),
            )
        if self.telemetry is not None:
            self.telemetry.scrape(
                "job-end", self.metrics, job=job.name,
                counters=result.counters.as_dict(),
            )
        return result

    def _run_traced(self, job: Job, job_span) -> JobResult:
        counters = Counters()
        splitter = job.splitter or default_splitter
        reader = job.reader or default_reader
        executor = self._executor_for(job)
        policy = self._policy_for(job)
        tracer = self.tracer
        telemetry = self.telemetry
        rebuilds_before = getattr(executor, "pool_rebuilds", 0)
        #: Phase attribution for the whole job, filled when profiling.
        profile: Dict[str, Dict[str, float]] = {}

        entries: Dict[str, Any] = {}
        for file_name in job.input_files:
            entry = entries.get(file_name)
            if entry is None:
                entry = entries[file_name] = self.fs.get(file_name)
            counters.increment(Counter.BLOCKS_TOTAL, entry.num_blocks)

        with tracer.span("split", kind="phase") as split_span:
            split_t0 = perf_counter() if policy.profile else 0.0
            splits = splitter(self.fs, job)
            counters.increment(Counter.BLOCKS_READ, len(splits))
            pruned = counters.get(Counter.BLOCKS_TOTAL) - len(splits)
            if pruned > 0:
                counters.increment(Counter.BLOCKS_PRUNED, pruned)
            split_span.set("splits", len(splits))
            split_span.set("blocks_total", counters.get(Counter.BLOCKS_TOTAL))
            split_span.set("blocks_pruned", max(0, pruned))
            self._verify_split_reads(splits, split_span, job.name)
            if policy.profile:
                _profiler.merge_into(
                    profile,
                    {"split-fetch": [perf_counter() - split_t0, 1]},
                    "driver",
                )

        output: List[Any] = []
        map_stats, intermediate, fault_summary = self._run_map_wave(
            job, splits, reader, counters, output, executor, policy, profile
        )
        if telemetry is not None:
            telemetry.scrape(
                "wave:map", self.metrics, job=job.name,
                counters=counters.as_dict(),
            )

        reduce_stats: List[TaskStats] = []
        shuffle_records = 0
        if job.reduce_fn is not None:
            shuffle_records = len(intermediate)
            shuffle_t0 = perf_counter() if policy.profile else 0.0
            shuffle_bytes = _RecordSizer().total(intermediate)
            if policy.profile:
                _profiler.merge_into(
                    profile,
                    {"shuffle-serialize": [perf_counter() - shuffle_t0, 1]},
                    "driver",
                )
            counters.increment(Counter.SHUFFLE_RECORDS, shuffle_records)
            counters.increment(Counter.SHUFFLE_BYTES, shuffle_bytes)
            tracer.event(
                "shuffle", records=shuffle_records, bytes=shuffle_bytes
            )
            reduce_stats, reduce_summary = self._run_reduce_wave(
                job, intermediate, counters, output, executor, policy, profile
            )
            _merge_summary(fault_summary, reduce_summary)
            if telemetry is not None:
                telemetry.scrape(
                    "wave:reduce", self.metrics, job=job.name,
                    counters=counters.as_dict(),
                )
        else:
            # Map-only job: emitted pairs join the direct output.
            output.extend(v for _, v in intermediate)

        if job.commit_fn is not None:
            with tracer.span("commit", kind="phase") as commit_span:
                commit_t0 = perf_counter() if policy.profile else 0.0
                commit_ctx = CommitContext(job, counters, output)
                job.commit_fn(commit_ctx)
                commit_span.set("output_records", len(output))
                if policy.profile:
                    _profiler.merge_into(
                        profile,
                        {"commit": [perf_counter() - commit_t0, 1]},
                        "driver",
                    )

        counters.increment(Counter.OUTPUT_RECORDS, len(output))
        job_span.set("output_records", len(output))
        rebuilds = getattr(executor, "pool_rebuilds", 0) - rebuilds_before
        if rebuilds:
            fault_summary["pool_rebuilds"] = rebuilds
            if self.eventlog is not None:
                # Pool health is backend-dependent by nature: volatile.
                self.eventlog.emit(
                    "warn", "executor", "pool-rebuilt", job=job.name,
                    volatile=True, rebuilds=rebuilds,
                )
        fault_summary = {k: v for k, v in fault_summary.items() if v}
        makespan = self.cluster.job_makespan(
            map_stats, reduce_stats, shuffle_records
        )
        return JobResult(
            output=output,
            counters=counters,
            map_tasks=map_stats,
            reduce_tasks=reduce_stats,
            makespan=makespan,
            fault_summary=fault_summary,
            phase_profile=profile,
        )

    def _verify_split_reads(self, splits, split_span, job_name=None) -> None:
        """Checksum-verify every block about to be read (HDFS read path).

        A replica on a dead node or with a failed checksum is skipped and
        the read fails over to the next healthy copy; only the
        ``READ_FAILOVERS`` / ``BLOCKS_CORRUPT_DETECTED`` metrics and the
        trace notice — the data handed to the map wave is identical, so
        job output and counters stay bit-identical under storage chaos. A
        block with no healthy replica fails the job with a
        :class:`~repro.mapreduce.storage.BlockUnavailableError`.
        """
        failovers = 0
        corrupt = 0
        for split in splits:
            f, c = self.fs.verify_block_read(
                split.file, split.block_index, split.block
            )
            failovers += f
            corrupt += c
        if not failovers and not corrupt:
            return
        split_span.set("read_failovers", failovers)
        if corrupt:
            split_span.set("corrupt_replicas_detected", corrupt)
        if self.eventlog is not None:
            # Which replicas are unhealthy is plan-deterministic, so
            # failover counts are part of the normalized log.
            self.eventlog.emit(
                "warn", "storage", "read-failover", job=job_name,
                failovers=failovers, corrupt=corrupt,
            )
        if self.metrics is not None:
            self.metrics.inc("READ_FAILOVERS", failovers)
            if corrupt:
                self.metrics.inc("BLOCKS_CORRUPT_DETECTED", corrupt)

    def verify_driver_read(self, *names: str) -> None:
        """Checksum-verify whole files the driver reads outside a job.

        Index-aware operations (the distributed join, kNN join) read
        partition records directly in the driver rather than through
        map-input splits. Those reads must go through the same HDFS
        read path as :meth:`_verify_split_reads`: pending storage
        faults fire first, unhealthy replicas fail over to healthy
        copies, and a block with no surviving copy raises
        :class:`~repro.mapreduce.storage.BlockUnavailableError` instead
        of silently serving rotten data. Repair traffic from a fired
        ``losenode`` is banked and charged to the next job's makespan,
        where it would have landed had the job's own split verification
        observed the loss.
        """
        self._pending_repair_s += self._apply_storage_faults()
        failovers = 0
        corrupt = 0
        for name in names:
            f, c = self.fs.verify_file_read(name)
            failovers += f
            corrupt += c
        if not failovers and not corrupt:
            return
        if self.eventlog is not None:
            self.eventlog.emit(
                "warn", "storage", "read-failover",
                files=",".join(names), failovers=failovers, corrupt=corrupt,
            )
        if self.metrics is not None:
            self.metrics.inc("READ_FAILOVERS", failovers)
            if corrupt:
                self.metrics.inc("BLOCKS_CORRUPT_DETECTED", corrupt)

    def _apply_storage_faults(self) -> float:
        """Fire any pending storage faults from the plan (fire-once).

        ``losenode`` fires immediately; ``corruptblock`` waits until its
        target file (and block) exists. Returns the simulated seconds
        the namenode's re-replication traffic cost, to be charged to the
        job that observed the loss.
        """
        plan = self.faults
        if plan is None or not getattr(plan, "storage", None):
            return 0.0
        storage = getattr(self.fs, "storage", None)
        if storage is None:
            return 0.0
        repair_s = 0.0
        for index, fault in enumerate(plan.storage):
            if index in self._storage_fired:
                continue
            if fault.kind == "losenode":
                self._storage_fired.add(index)
                repaired, seconds = storage.lose_node(
                    fault.node, self.fs,
                    io_seconds=self.cluster.per_record_io_s,
                )
                repair_s += seconds
                if self.eventlog is not None:
                    self.eventlog.emit(
                        "warn", "storage", "datanode-lost",
                        node=fault.node, replicas_repaired=repaired,
                    )
                if self.metrics is not None:
                    self.metrics.inc("DATANODES_LOST")
                    if repaired:
                        self.metrics.inc("REPLICAS_REPAIRED", repaired)
            elif fault.kind == "corruptblock" and self.fs.exists(fault.file):
                blocks = self.fs.get(fault.file).blocks
                if fault.block < len(blocks):
                    self._storage_fired.add(index)
                    storage.corrupt_replica(
                        blocks[fault.block], fault.replica
                    )
        return repair_s

    def _record_metrics(self, result: JobResult) -> None:
        """Fold one finished job into the metrics registry."""
        metrics = self.metrics
        metrics.inc("JOBS_TOTAL")
        metrics.merge_counters(result.counters)
        duration = metrics.histogram(
            "task_duration_seconds", TASK_DURATION_BUCKETS
        )
        for task in result.map_tasks:
            duration.observe(task.seconds)
        for task in result.reduce_tasks:
            duration.observe(task.seconds)
        if result.reduce_tasks:
            metrics.observe(
                "shuffle_bytes",
                result.counters.get(Counter.SHUFFLE_BYTES),
                SHUFFLE_BYTES_BUCKETS,
            )
        metrics.set_gauge("last_job_makespan_s", result.makespan)
        # Cumulative per-phase wall seconds. ``profile_`` names are
        # volatile by convention (see repro.observe.telemetry): scrape
        # logs segregate them, keeping the normalized series
        # backend-independent.
        for key, entry in result.phase_profile.items():
            name = "profile_" + key.replace("/", "_").replace("-", "_") + "_s"
            metrics.add_gauge(name, entry["s"])
        fault = result.fault_summary
        if fault:
            for key, name in (
                ("retries", "TASKS_RETRIED"),
                ("speculative", "TASKS_SPECULATIVE"),
                ("timeouts", "TASKS_TIMED_OUT"),
                ("worker_lost", "TASKS_WORKER_LOST"),
                ("corrupt", "TASKS_CORRUPTED"),
                ("crashes", "TASK_CRASHES"),
                ("faults_injected", "FAULTS_INJECTED"),
                ("pool_rebuilds", "POOL_REBUILDS"),
            ):
                if fault.get(key):
                    metrics.inc(name, int(fault[key]))
            if fault.get("backoff_s"):
                metrics.observe(
                    "retry_backoff_seconds",
                    fault["backoff_s"],
                    BACKOFF_SECONDS_BUCKETS,
                )

    # ------------------------------------------------------------------
    # The wave supervisor: retries, timeouts, validation, speculation.
    # ------------------------------------------------------------------
    def _execute_wave(
        self,
        wave: str,
        items: Sequence[Any],
        make_payload: Callable[[List[Tuple[int, int, Any]]], Any],
        chunk_fn,
        executor: Executor,
        policy: _WavePolicy,
        task_label: Callable[[int], str],
    ):
        """Run every task of one wave to a successful attempt.

        Returns ``(datas, attempts, summary)``: the winning 7-tuple per
        task (wave order), the attempt history per task, and the wave's
        fault-activity counts. Raises the original task error once a
        task exhausts ``max_attempts``.

        Retries are batched: each round re-dispatches every task that
        failed the previous round, with its simulated backoff charged to
        the attempt record (and hence the makespan) rather than slept.

        When a checkpoint manager is armed, a journaled wave is
        *replayed* — its recorded result triple returned without
        executing anything — and an executed wave is journaled on its
        way out. Because waves are deterministic and all downstream
        merging is a pure function of the triple, a resumed run is
        bit-identical to an uninterrupted one. Driver faults
        (``crashdriver`` / ``hangdriver``) fire after the commit, and
        the cancellation token is polled at every wave boundary.
        """
        index = self._wave_ordinal
        ckpt = self.checkpoint
        fingerprint = f"{index}|{wave}|{len(items)}"
        if ckpt is not None:
            cached = ckpt.replay(index, fingerprint)
            if cached is not None:
                self._wave_ordinal = index + 1
                self._note_checkpoint("replayed", index, wave)
                self._check_cancel()
                return cached
        n = len(items)
        datas: List[Any] = [None] * n
        attempts: List[List[TaskAttempt]] = [[] for _ in range(n)]
        backoff_due: Dict[int, float] = {}
        summary = _new_summary()
        plan_seed = policy.faults.seed if policy.faults is not None else 0
        pending: List[Tuple[int, int]] = [(i, 0) for i in range(n)]
        while pending:
            failed: List[Tuple[int, Exception]] = []
            tasks = [(i, attempt, items[i]) for i, attempt in pending]
            self._count_injections(wave, pending, policy, summary)
            for marker in self._dispatch(executor, chunk_fn, make_payload,
                                         tasks):
                self._absorb(marker, datas, attempts, backoff_due, failed,
                             policy, summary)
            pending = []
            for i, error in failed:
                next_attempt = len(attempts[i])
                if next_attempt >= policy.max_attempts:
                    raise error
                wait = retry_backoff(task_label(i), next_attempt, plan_seed)
                backoff_due[i] = wait
                summary["retries"] += 1
                summary["backoff_s"] += wait
                pending.append((i, next_attempt))
        if policy.speculative and n >= MIN_SPECULATION_TASKS:
            self._speculate(wave, items, datas, attempts, make_payload,
                            chunk_fn, executor, policy, summary)
        self._wave_ordinal = index + 1
        if ckpt is not None and ckpt.commit(
            index, fingerprint, (datas, attempts, summary)
        ):
            self._note_checkpoint("committed", index, wave)
        self._fire_driver_faults(index, policy)
        self._check_cancel()
        return datas, attempts, summary

    def _note_checkpoint(self, action: str, index: int, wave: str) -> None:
        """Record one checkpoint commit/replay across the observability
        layer. Everything here is flagged volatile: whether a wave was
        journaled or replayed is exactly what differs between a clean
        run and a resumed one, so it must never enter the normalized
        trace/log the determinism contract compares."""
        if self.metrics is not None:
            self.metrics.inc(
                "CHECKPOINTS_WRITTEN" if action == "committed"
                else "CHECKPOINTS_REPLAYED"
            )
        if self.tracer.enabled:
            self.tracer.event(
                "checkpoint", kind="checkpoint", volatile=True,
                action=action, wave=index, kind_of_wave=wave,
            )
        if self.eventlog is not None:
            self.eventlog.emit(
                "debug", "checkpoint", f"wave-{action}", volatile=True,
                wave=index, wave_kind=wave,
            )

    def _fire_driver_faults(self, index: int, policy: _WavePolicy) -> None:
        """Fire scripted driver faults at executed wave ``index``.

        Fire-once per (wave, plan-position); the fired key is persisted
        to the checkpoint manifest *before* the fault takes effect, so a
        resumed run — which replays the journaled waves and never
        re-enters this path for them — also never re-fires a wildcard
        fault at an already-survived wave it does re-execute.
        """
        plan = policy.faults
        if plan is None or not getattr(plan, "driver", ()):
            return
        ckpt = self.checkpoint
        for pos, fault in plan.driver_at(index):
            key = (index, pos)
            if key in self._driver_fired:
                continue
            self._driver_fired.add(key)
            if ckpt is not None:
                ckpt.mark_fired(key)
            if self.metrics is not None:
                self.metrics.inc("DRIVER_FAULTS_INJECTED")
            if fault.kind == "hangdriver":
                seconds = (
                    fault.arg if fault.arg is not None else DEFAULT_HANG_SECONDS
                )
                if self.cancellation is not None:
                    self.cancellation.add_hang(seconds)
                if self.eventlog is not None:
                    self.eventlog.emit(
                        "warn", "checkpoint", "driver-hang-injected",
                        volatile=True, wave=index, seconds=seconds,
                    )
                continue
            # crashdriver: optionally shred the just-committed checkpoint
            # (torn-write simulation), mark the run resumable, then die.
            if ckpt is not None:
                if fault.arg is not None:
                    ckpt.tear_wave_file(index, fault.arg)
                ckpt.interrupt(fault.describe())
            if self.eventlog is not None:
                self.eventlog.emit(
                    "error", "checkpoint", "driver-crash-injected",
                    volatile=True, wave=index,
                )
            raise DriverCrashed(
                f"injected driver crash after wave {index} "
                f"({fault.describe()})"
            )

    @staticmethod
    def _count_injections(wave, pending, policy, summary) -> None:
        """Count scripted faults about to fire in this dispatch round.

        Counted driver-side from the plan (not from failure markers)
        so every kind registers — including ``hang``, whose only
        worker-side trace is an inflated CPU charge, and ``kill``,
        whose chunk may be transparently re-dispatched by the pool.
        """
        if policy.faults is None:
            return
        for i, attempt in pending:
            if policy.faults.lookup(wave, i, attempt) is not None:
                summary["faults_injected"] += 1

    def _dispatch(self, executor, chunk_fn, make_payload, tasks):
        """One round of task attempts through the executor; flat markers."""
        num_chunks = (
            executor.workers * CHUNKS_PER_WORKER
            if executor.workers > 1
            else 1
        )
        payloads = [
            make_payload(list(chunk)) for chunk in _chunked(tasks, num_chunks)
        ]
        markers = []
        for chunk_result in executor.map_chunks(chunk_fn, payloads):
            markers.extend(chunk_result)
        return markers

    def _absorb(
        self, marker, datas, attempts, backoff_due, failed, policy, summary
    ) -> None:
        """Fold one attempt marker into the wave state."""
        if marker[0] == "ok":
            _, i, attempt, data = marker
            if not _valid_task_data(data):
                summary["corrupt"] += 1
                error: Exception = TaskCorrupted(
                    f"task attempt {attempt} returned an invalid result"
                )
                self._record_failure(
                    i, attempt, "corrupt", error, 0.0,
                    attempts, backoff_due, failed,
                )
                return
            seconds = data[5]
            timeout = policy.task_timeout
            if timeout is not None and seconds > timeout:
                summary["timeouts"] += 1
                error = TaskTimeoutError(
                    f"task attempt {attempt} charged {seconds:.3f}s CPU, "
                    f"over the {timeout:.3f}s per-attempt timeout"
                )
                self._record_failure(
                    i, attempt, "timeout", error, seconds,
                    attempts, backoff_due, failed,
                )
                return
            datas[i] = data
            attempts[i].append(
                TaskAttempt(
                    attempt=attempt,
                    outcome="success",
                    seconds=seconds,
                    backoff_s=backoff_due.pop(i, 0.0),
                )
            )
        else:
            _, i, attempt, outcome, error, seconds = marker
            summary["worker_lost" if outcome == "worker-lost" else
                    "crashes"] += 1
            self._record_failure(
                i, attempt, outcome, error, seconds,
                attempts, backoff_due, failed,
            )

    @staticmethod
    def _record_failure(
        i, attempt, outcome, error, seconds, attempts, backoff_due, failed
    ) -> None:
        attempts[i].append(
            TaskAttempt(
                attempt=attempt,
                outcome=outcome,
                seconds=seconds,
                backoff_s=backoff_due.pop(i, 0.0),
                error=f"{type(error).__name__}: {error}",
            )
        )
        failed.append((i, error))

    def _speculate(
        self, wave, items, datas, attempts, make_payload, chunk_fn,
        executor, policy, summary,
    ) -> None:
        """Backup attempts for stragglers; the faster copy wins.

        The batch runtime sees the whole wave before deciding (the
        *simulated* cluster applies the speculation-trigger fraction —
        see :meth:`ClusterModel.wave_span`): tasks slower than
        ``slow_task_factor ×`` the wave median re-run once, and if the
        backup's CPU charge beats the original, the backup's result and
        timing replace it — the original is recorded as
        ``speculative-lost``, mirroring Hadoop killing the slower
        attempt.
        """
        n = len(items)
        winners = [attempts[i][-1].seconds for i in range(n)]
        median = sorted(winners)[n // 2]
        if median <= 0:
            return
        threshold = policy.slow_task_factor * median
        stragglers = [i for i in range(n) if winners[i] > threshold]
        if not stragglers:
            return
        summary["speculative"] += len(stragglers)
        tasks = [(i, len(attempts[i]), items[i]) for i in stragglers]
        self._count_injections(
            wave, [(i, a) for i, a, _ in tasks], policy, summary
        )
        for marker in self._dispatch(executor, chunk_fn, make_payload, tasks):
            self._absorb_backup(marker, datas, attempts)

    @staticmethod
    def _absorb_backup(marker, datas, attempts) -> None:
        """Fold one speculative-backup marker in; failures are free.

        The primary attempt already succeeded, so a failed or corrupted
        backup is recorded and ignored — speculation can never make a
        wave fail.
        """
        i, attempt = marker[1], marker[2]
        if marker[0] == "ok" and _valid_task_data(marker[3]):
            data = marker[3]
            seconds = data[5]
            primary = attempts[i][-1]
            if seconds < primary.seconds:
                primary.outcome = "speculative-lost"
                attempts[i].append(
                    TaskAttempt(
                        attempt=attempt,
                        outcome="success",
                        seconds=seconds,
                        speculative=True,
                    )
                )
                datas[i] = data
            else:
                attempts[i].append(
                    TaskAttempt(
                        attempt=attempt,
                        outcome="speculative-lost",
                        seconds=seconds,
                        speculative=True,
                    )
                )
        else:
            outcome = marker[3] if marker[0] == "err" else "corrupt"
            error = marker[4] if marker[0] == "err" else None
            seconds = marker[5] if marker[0] == "err" else 0.0
            attempts[i].append(
                TaskAttempt(
                    attempt=attempt,
                    outcome=outcome,
                    seconds=seconds,
                    speculative=True,
                    error=f"{type(error).__name__}: {error}" if error else "",
                )
            )

    # ------------------------------------------------------------------
    def _run_map_wave(
        self,
        job: Job,
        splits: List[InputSplit],
        reader,
        counters: Counters,
        output: List[Any],
        executor: Executor,
        policy: _WavePolicy,
        profile: Optional[Dict[str, Dict[str, float]]] = None,
    ):
        intermediate: List[Tuple[Any, Any]] = []
        stats: List[TaskStats] = []
        summary = _new_summary()
        counters.increment(Counter.MAP_TASKS, len(splits))
        if not splits:
            return stats, intermediate, summary

        tracer = self.tracer
        progress = self.progress
        log = self.eventlog
        if progress is not None:
            progress.wave_started(job.name, "map", len(splits))
        with tracer.span("wave:map", kind="wave", tasks=len(splits)) as wave:
            shipped = _shipped_job(
                job, wave="map", faults=policy.faults,
                profile=policy.profile, log_level=policy.log_level,
            )
            datas, attempts, summary = self._execute_wave(
                wave="map",
                items=splits,
                make_payload=lambda tasks: (shipped, reader, tasks),
                chunk_fn=_run_map_chunk,
                executor=executor,
                policy=policy,
                task_label=lambda i: f"map-{splits[i].block_index}",
            )
            self._trace_dispatch(executor)
            self._charge_dispatch(executor, policy, profile)
            _annotate_wave(wave, summary)
            cursor = wave.start
            for i, data in enumerate(datas):
                task_id, records_in, cdict, emitted, out, secs, events = data[:7]
                counters.merge_dict(cdict)
                if policy.profile and profile is not None and data[7]:
                    _profiler.merge_into(profile, data[7], "map")
                stats.append(
                    TaskStats(
                        task_id=task_id,
                        records_in=records_in,
                        records_out=len(emitted) + len(out),
                        seconds=secs,
                        attempts=_final_attempts(attempts[i]),
                    )
                )
                span_id = None
                if tracer.enabled:
                    cursor, span_id = self._trace_task(
                        task_id, records_in, stats[-1].records_out,
                        secs, events, cursor, stats[-1].attempts,
                    )
                if log is not None and events:
                    log.absorb(
                        events, job=job.name, wave="map",
                        task=task_id, span=span_id,
                    )
                if progress is not None:
                    progress.task_finished(
                        "map", len(stats), len(splits),
                        records_in, stats[-1].records_out,
                    )
                intermediate.extend(emitted)
                output.extend(out)
            self._log_wave(job.name, "map", len(stats), summary)
        return stats, intermediate, summary

    def _run_reduce_wave(
        self,
        job: Job,
        intermediate: List[Tuple[Any, Any]],
        counters: Counters,
        output: List[Any],
        executor: Executor,
        policy: _WavePolicy,
        profile: Optional[Dict[str, Dict[str, float]]] = None,
    ):
        num_reducers = max(1, job.num_reducers)
        buckets: List[Dict[Any, List[Any]]] = [{} for _ in range(num_reducers)]
        for k, v in intermediate:
            index = job.partitioner(k, num_reducers) if num_reducers > 1 else 0
            buckets[index].setdefault(k, []).append(v)

        tasks = [
            (task_index, list(bucket.items()))
            for task_index, bucket in enumerate(buckets)
            if bucket
        ]
        counters.increment(Counter.REDUCE_TASKS, len(tasks))
        stats: List[TaskStats] = []
        summary = _new_summary()
        if not tasks:
            return stats, summary

        tracer = self.tracer
        progress = self.progress
        log = self.eventlog
        if progress is not None:
            progress.wave_started(job.name, "reduce", len(tasks))
        with tracer.span("wave:reduce", kind="wave", tasks=len(tasks)) as wave:
            shipped = _shipped_job(
                job, wave="reduce", faults=policy.faults,
                profile=policy.profile, log_level=policy.log_level,
            )
            datas, attempts, summary = self._execute_wave(
                wave="reduce",
                items=tasks,
                make_payload=lambda ts: (shipped, ts),
                chunk_fn=_run_reduce_chunk,
                executor=executor,
                policy=policy,
                task_label=lambda i: f"reduce-{tasks[i][0]}",
            )
            self._trace_dispatch(executor)
            self._charge_dispatch(executor, policy, profile)
            _annotate_wave(wave, summary)
            cursor = wave.start
            for i, data in enumerate(datas):
                task_index, records_in, cdict, emitted, out, secs, events = data[:7]
                counters.merge_dict(cdict)
                if policy.profile and profile is not None and data[7]:
                    _profiler.merge_into(profile, data[7], "reduce")
                stats.append(
                    TaskStats(
                        task_id=f"reduce-{task_index}",
                        records_in=records_in,
                        records_out=len(emitted) + len(out),
                        seconds=secs,
                        attempts=_final_attempts(attempts[i]),
                    )
                )
                span_id = None
                if tracer.enabled:
                    cursor, span_id = self._trace_task(
                        f"reduce-{task_index}", records_in,
                        stats[-1].records_out, secs, events, cursor,
                        stats[-1].attempts,
                    )
                if log is not None and events:
                    log.absorb(
                        events, job=job.name, wave="reduce",
                        task=f"reduce-{task_index}", span=span_id,
                    )
                if progress is not None:
                    progress.task_finished(
                        "reduce", len(stats), len(tasks),
                        records_in, stats[-1].records_out,
                    )
                # Reduce emit() goes to the job output (no later stage).
                output.extend(v for _, v in emitted)
                output.extend(out)
            self._log_wave(job.name, "reduce", len(stats), summary)
        return stats, summary

    # ------------------------------------------------------------------
    # Trace plumbing. Task spans are laid out on a synthetic timeline —
    # cumulative CPU seconds from the wave's start, in split/bucket
    # order — so a wave reads like a schedule and serial/parallel runs
    # produce identical span sequences (timestamps are normalised away
    # on comparison; see repro.observe.trace). Attempt spans nest under
    # their task span; speculative ones are volatile because which copy
    # wins is timing-dependent by nature.
    # ------------------------------------------------------------------
    def _trace_task(
        self, task_id, records_in, records_out, secs, events, cursor,
        attempts=(),
    ) -> Tuple[float, int]:
        attrs = {"records_in": records_in, "records_out": records_out}
        if attempts:
            attrs["attempts"] = sum(
                1 for a in attempts if not a.speculative
            )
        span_id = self.tracer.add_span(
            f"task:{task_id}", "task", cursor, cursor + secs, **attrs
        )
        offset = cursor
        for a in attempts:
            start = offset + a.backoff_s
            a_attrs = {"outcome": a.outcome}
            if a.backoff_s:
                a_attrs["backoff_s"] = round(a.backoff_s, 6)
            if a.error:
                a_attrs["error"] = a.error
            self.tracer.add_span(
                f"attempt:{task_id}#{a.attempt}", "attempt",
                start, start + a.seconds,
                parent_id=span_id, volatile=a.speculative, **a_attrs,
            )
            if not a.speculative:
                offset = start + a.seconds
        for event in events:
            if "log" in event:  # ctx.log records: the event log's, not ours
                continue
            self.tracer.event(
                event["name"], parent_id=span_id, **event["attrs"]
            )
        return cursor + secs, span_id

    def _log_wave(self, job_name, wave, tasks, summary) -> None:
        """Wave-boundary event-log records (after task logs absorbed).

        Retry/timeout/corruption counts are plan-deterministic — the
        same faults fire on every backend — so they join the normalized
        log; speculation outcomes depend on measured CPU and stay
        volatile.
        """
        log = self.eventlog
        if log is None:
            return
        log.emit(
            "info", "runtime", "wave-finished",
            job=job_name, wave=wave, tasks=tasks,
            span=self.tracer.current_span_id(),
        )
        faults = {
            key: int(summary[key])
            for key in ("retries", "timeouts", "corrupt", "worker_lost",
                        "faults_injected")
            if summary.get(key)
        }
        if faults:
            log.emit(
                "warn", "runtime", "wave-faults",
                job=job_name, wave=wave, **faults,
            )
        if summary.get("speculative"):
            log.emit(
                "warn", "runtime", "wave-speculation",
                job=job_name, wave=wave, volatile=True,
                backups=int(summary["speculative"]),
            )

    def _trace_dispatch(self, executor: Executor) -> None:
        """Record how the wave was dispatched, as volatile diagnostics.

        Backend, worker count and chunking legitimately differ between
        serial and parallel runs, so this event is flagged volatile and
        dropped by trace normalisation — visible in raw traces, excluded
        from the determinism contract.
        """
        if not self.tracer.enabled:
            return
        info = executor.last_dispatch or {}
        self.tracer.event(
            "dispatch",
            kind="dispatch",
            volatile=True,
            backend=executor.name,
            workers=executor.workers,
            **info,
        )

    @staticmethod
    def _charge_dispatch(executor: Executor, policy, profile) -> None:
        """Charge the wave's chunk-serialization time to the profile.

        The parallel executor measures how long it spent pickling and
        submitting chunks (``submit_s`` in its dispatch diagnostics);
        that *is* the driver's shuffle-serialize cost. Serial dispatch
        has no serialization, so nothing is charged.
        """
        if not policy.profile or profile is None:
            return
        submit_s = (executor.last_dispatch or {}).get("submit_s")
        if submit_s:
            _profiler.merge_into(
                profile, {"shuffle-serialize": [submit_s, 1]}, "driver"
            )


def _new_summary() -> Dict[str, float]:
    return {
        "retries": 0,
        "timeouts": 0,
        "corrupt": 0,
        "worker_lost": 0,
        "crashes": 0,
        "speculative": 0,
        "faults_injected": 0,
        "backoff_s": 0.0,
    }


def _merge_summary(into: Dict[str, float], other: Dict[str, float]) -> None:
    for key, value in other.items():
        into[key] = into.get(key, 0) + value


def _annotate_wave(wave_span, summary: Dict[str, float]) -> None:
    """Attach non-zero fault counts to the wave span.

    These counts are plan-deterministic (the same faults fire on every
    backend), so they are part of the normal — not volatile — trace.
    """
    for key in ("retries", "timeouts", "corrupt", "worker_lost",
                "speculative"):
        if summary.get(key):
            wave_span.set(f"tasks_{key}", int(summary[key]))


def _final_attempts(records: List[TaskAttempt]) -> List[TaskAttempt]:
    """Attempt history worth keeping: anything beyond one clean success."""
    if (
        len(records) == 1
        and records[0].outcome == "success"
        and records[0].backoff_s == 0.0
    ):
        return []
    return records


def _sorted_items(
    items: List[Tuple[Any, List[Any]]]
) -> List[Tuple[Any, List[Any]]]:
    """Key-grouped items in key order when comparable, as given otherwise.

    Combiner and map output groups usually arrive already key-sorted (or
    nearly so); the linear pre-scan skips the re-sort — and its copy — in
    that common case.
    """
    try:
        for i in range(len(items) - 1):
            if items[i + 1][0] < items[i][0]:
                return sorted(items, key=lambda kv: kv[0])
        return items
    except TypeError:
        return items


def _sorted_keys(bucket: Dict[Any, List[Any]]) -> List[Any]:
    """Keys in sorted order when comparable, insertion order otherwise."""
    keys = list(bucket.keys())
    try:
        return sorted(keys)
    except TypeError:
        return keys
