"""Pluggable task executors: how a wave of tasks is physically run.

The :class:`JobRunner` executes a job as two *waves* — all map tasks, then
all reduce tasks. An :class:`Executor` decides how the tasks of one wave
are dispatched:

* :class:`SerialExecutor` runs every task in the driver process, one after
  another. It is the default because it is perfectly reproducible, imposes
  zero dispatch overhead, and supports map/reduce functions that close over
  driver-side state (several operations and many tests rely on that).
* :class:`ParallelExecutor` fans the wave out over a pool of worker
  *processes* (``concurrent.futures.ProcessPoolExecutor``), the real-world
  counterpart of the cluster the :class:`~repro.mapreduce.cluster.
  ClusterModel` simulates. Tasks are shipped in chunks so the job object is
  pickled once per chunk rather than once per task, and results come back
  in submission order so job output and counters are identical to a serial
  run.

Jobs whose functions cannot be pickled (closures over local state, lambdas)
transparently fall back to in-process execution; the ``fallbacks`` counter
on the executor records how often that happened.

The worker count is resolved from, in decreasing priority: an explicit
``Job.config["workers"]`` entry, the ``JobRunner(workers=...)`` argument,
the ``REPRO_WORKERS`` environment variable, and finally 1 (serial).
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, List, Optional, Sequence

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Target number of chunks per worker: more chunks -> better load balance,
#: fewer chunks -> less pickling. 4 is the conventional compromise.
CHUNKS_PER_WORKER = 4


def resolve_workers(explicit: Optional[int] = None) -> int:
    """Resolve a worker count from ``explicit`` or ``$REPRO_WORKERS``.

    Returns at least 1; 1 means serial execution.
    """
    if explicit is not None:
        return max(1, int(explicit))
    env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    return 1


def make_executor(workers: Optional[int] = None) -> "Executor":
    """An executor for ``workers`` (resolved via :func:`resolve_workers`)."""
    count = resolve_workers(workers)
    if count <= 1:
        return SerialExecutor()
    return ParallelExecutor(count)


class Executor:
    """Interface: run one wave of task chunks, preserving order."""

    #: Human-readable backend name (shows up in benchmark tables).
    name = "abstract"
    #: Worker processes this executor uses (1 for serial).
    workers = 1
    #: How the most recent wave was dispatched: ``{"chunks": int,
    #: "mode": "in-process" | "pool"}``. Observability only — the trace
    #: attaches it to wave spans as *volatile* diagnostics, because
    #: dispatch mode is exactly the thing that differs between backends.
    last_dispatch: Optional[dict] = None

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Apply ``fn`` to every chunk and return results in chunk order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources. Idempotent."""


class SerialExecutor(Executor):
    """Run every chunk in the driver process (the reproducible default)."""

    name = "serial"

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        self.last_dispatch = {"chunks": len(chunks), "mode": "in-process"}
        return [fn(chunk) for chunk in chunks]


class ParallelExecutor(Executor):
    """Run chunks concurrently on a process pool.

    The pool is created lazily on first use and reused across jobs so its
    startup cost is paid once per runner, not once per wave. The executor
    pickles cleanly (the pool is dropped and re-created on demand), which
    keeps CLI workspaces — which pickle the whole :class:`SpatialHadoop`
    facade — working.
    """

    name = "parallel"

    def __init__(self, workers: Optional[int] = None):
        self.workers = max(2, resolve_workers(workers))
        #: Number of waves that could not be parallelised (unpicklable
        #: job functions) and ran in-process instead.
        self.fallbacks = 0
        self._pool = None

    # -- pickling support -------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    # -- pool management --------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # -- execution --------------------------------------------------------
    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        if len(chunks) <= 1:
            # Nothing to overlap; skip the dispatch cost entirely.
            self.last_dispatch = {"chunks": len(chunks), "mode": "in-process"}
            return [fn(chunk) for chunk in chunks]
        if not self._can_ship(chunks[0]):
            self.fallbacks += 1
            self.last_dispatch = {"chunks": len(chunks), "mode": "in-process"}
            return [fn(chunk) for chunk in chunks]
        pool = self._ensure_pool()
        try:
            results = list(pool.map(fn, chunks))
            self.last_dispatch = {"chunks": len(chunks), "mode": "pool"}
            return results
        except (pickle.PicklingError, AttributeError, TypeError):
            # A later chunk (or a task's return value) failed to pickle.
            # The pool survives submission-side pickling errors; rerun the
            # whole wave in-process so results stay complete and ordered.
            self.fallbacks += 1
            self.last_dispatch = {"chunks": len(chunks), "mode": "in-process"}
            return [fn(chunk) for chunk in chunks]

    @staticmethod
    def _can_ship(chunk: Any) -> bool:
        """Cheap pre-flight: can this wave's payload cross a process?

        All chunks of a wave share the same job object and function
        references, so probing the first chunk catches the common failure
        (closures/lambdas as map/reduce functions) before any worker is
        involved.
        """
        try:
            pickle.dumps(chunk)
            return True
        except Exception:
            return False
