"""Pluggable task executors: how a wave of tasks is physically run.

The :class:`JobRunner` executes a job as two *waves* — all map tasks, then
all reduce tasks. An :class:`Executor` decides how the tasks of one wave
are dispatched:

* :class:`SerialExecutor` runs every task in the driver process, one after
  another. It is the default because it is perfectly reproducible, imposes
  zero dispatch overhead, and supports map/reduce functions that close over
  driver-side state (several operations and many tests rely on that).
* :class:`ParallelExecutor` fans the wave out over a pool of worker
  *processes* (``concurrent.futures.ProcessPoolExecutor``), the real-world
  counterpart of the cluster the :class:`~repro.mapreduce.cluster.
  ClusterModel` simulates. Tasks are shipped in chunks so the job object is
  pickled once per chunk rather than once per task, and results come back
  in submission order so job output and counters are identical to a serial
  run.

Jobs whose functions cannot be pickled (closures over local state, lambdas)
transparently fall back to in-process execution; the ``fallbacks`` counter
on the executor records how often that happened.

The parallel backend also degrades gracefully when workers die: a broken
pool (worker process killed, pipe torn down) is rebuilt once per wave and
only the chunks that had not completed are re-dispatched; if the rebuilt
pool breaks too, the remaining chunks run in-process. Repeated breakage
across waves blacklists the pool entirely. The ``pool_rebuilds`` counter
records every rebuild.

The worker count is resolved from, in decreasing priority: an explicit
``Job.config["workers"]`` entry, the ``JobRunner(workers=...)`` argument,
the ``REPRO_WORKERS`` environment variable, and finally 1 (serial).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import BrokenExecutor
from time import perf_counter
from typing import Any, Callable, List, Optional, Sequence

from repro.mapreduce.checkpoint import check_active

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Target number of chunks per worker: more chunks -> better load balance,
#: fewer chunks -> less pickling. 4 is the conventional compromise.
CHUNKS_PER_WORKER = 4

#: Pool rebuilds allowed within a single wave before the remainder of the
#: wave runs in-process.
MAX_REBUILDS_PER_WAVE = 1

#: Cumulative pool rebuilds after which the pool is blacklisted and every
#: later wave runs in-process (the environment, not the wave, is broken).
BLACKLIST_REBUILDS = 5

#: Errors that *can* mean "result or submission failed to pickle". The
#: pool survives these; only the offending chunks re-run in-process.
#: AttributeError / TypeError are raised by the pickle machinery for
#: unpicklable payloads but equally by ordinary user code, so membership
#: here is necessary, not sufficient: result-loop failures are vetted by
#: :func:`_is_serialization_error` before being treated as pickle
#: trouble.
_PICKLE_ERRORS = (pickle.PicklingError, AttributeError, TypeError)

#: Errors meaning "the pool itself is dead" (worker process killed, result
#: pipe torn down). BrokenExecutor covers BrokenProcessPool.
_BROKEN_POOL_ERRORS = (BrokenExecutor, BrokenPipeError, EOFError,
                       ConnectionResetError)

#: Substrings that place an exception inside the serialization machinery
#: rather than user code: pickle itself, multiprocessing's queue feeder
#: and reducer, and the worker-side result send.
_SERIALIZATION_MARKERS = (
    "pickle", "_sendback_result", "queues.py", "reduction.py",
)


def _is_serialization_error(exc: BaseException) -> bool:
    """Did ``exc`` come from (de)serializing a payload, not from user code?

    ``PicklingError`` is unambiguous. For ``AttributeError`` / ``TypeError``
    the evidence is examined: the message (``Can't pickle ...``, ``cannot
    pickle ...``, ``Can't get attribute ...``), the chained cause — a
    worker-side serialization failure arrives as a ``RemoteTraceback``
    cause whose text names the pickle machinery — and the traceback's
    frame filenames. A genuine ``TypeError`` raised by a map function
    matches none of these and must propagate as a task failure, not
    silently re-run in-process.
    """
    if isinstance(exc, pickle.PicklingError):
        return True
    if not isinstance(exc, (AttributeError, TypeError)):
        return False
    texts = [str(exc)]
    cause = exc.__cause__ or exc.__context__
    if cause is not None:
        texts.append(str(cause))
    for text in texts:
        lowered = text.lower()
        if "pickle" in lowered or "can't get attribute" in lowered:
            return True
    tb = exc.__traceback__
    while tb is not None:
        filename = tb.tb_frame.f_code.co_filename
        if any(marker in filename for marker in _SERIALIZATION_MARKERS):
            return True
        tb = tb.tb_next
    return False


def _prepare_shipped(chunks: Sequence[Any]):
    """Shared-memory rewrite of a wave's chunks, or a transparent no-op.

    Returns ``(shipped, arena)``; the caller must ``arena.destroy()``
    once every result is in. Any failure here (or shipping being
    disabled) degrades to pickling the original chunks.
    """
    try:
        from repro.mapreduce import shm

        if not shm.enabled():
            return list(chunks), None
        return shm.prepare_chunks(chunks)
    except Exception:
        return list(chunks), None


def resolve_workers(explicit: Optional[int] = None) -> int:
    """Resolve a worker count from ``explicit`` or ``$REPRO_WORKERS``.

    Returns at least 1; 1 means serial execution.
    """
    if explicit is not None:
        return max(1, int(explicit))
    env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    return 1


def make_executor(workers: Optional[int] = None) -> "Executor":
    """An executor for ``workers`` (resolved via :func:`resolve_workers`)."""
    count = resolve_workers(workers)
    if count <= 1:
        return SerialExecutor()
    return ParallelExecutor(count)


class Executor:
    """Interface: run one wave of task chunks, preserving order."""

    #: Human-readable backend name (shows up in benchmark tables).
    name = "abstract"
    #: Worker processes this executor uses (1 for serial).
    workers = 1
    #: How the most recent wave was dispatched: ``{"chunks": int,
    #: "mode": "in-process" | "pool"}``. Observability only — the trace
    #: attaches it to wave spans as *volatile* diagnostics, because
    #: dispatch mode is exactly the thing that differs between backends.
    last_dispatch: Optional[dict] = None

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        """Apply ``fn`` to every chunk and return results in chunk order."""
        raise NotImplementedError

    def close(self, wait: bool = True) -> None:
        """Release any pooled resources. Idempotent.

        ``wait=False`` must never block: it is the interpreter-teardown
        path (``__del__``), where joining worker processes can deadlock
        or stall exit.
        """


class SerialExecutor(Executor):
    """Run every chunk in the driver process (the reproducible default)."""

    name = "serial"

    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        self.last_dispatch = {"chunks": len(chunks), "mode": "in-process"}
        return [fn(chunk) for chunk in chunks]


class ParallelExecutor(Executor):
    """Run chunks concurrently on a process pool.

    The pool is created lazily on first use and reused across jobs so its
    startup cost is paid once per runner, not once per wave. The executor
    pickles cleanly (the pool is dropped and re-created on demand), which
    keeps CLI workspaces — which pickle the whole :class:`SpatialHadoop`
    facade — working.
    """

    name = "parallel"

    def __init__(self, workers: Optional[int] = None):
        self.workers = max(2, resolve_workers(workers))
        #: Number of waves that could not be parallelised (unpicklable
        #: job functions or results) and ran — fully or partly —
        #: in-process instead.
        self.fallbacks = 0
        #: Number of times a broken pool (dead worker, torn pipe) was
        #: thrown away and re-created.
        self.pool_rebuilds = 0
        #: Set once pool breakage crosses ``BLACKLIST_REBUILDS``: the
        #: environment is deemed hostile and all later waves run
        #: in-process.
        self.blacklisted = False
        self._pool = None

    # -- pickling support -------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Executors pickled before degraded-mode recovery existed.
        self.__dict__.setdefault("pool_rebuilds", 0)
        self.__dict__.setdefault("blacklisted", False)

    # -- pool management --------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool without waiting on its workers."""
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def close(self, wait: bool = True) -> None:
        """Shut the pool down. Idempotent and exception-free.

        Both the cancellation/deadline path and ``__del__`` may race a
        close that already happened (runner teardown closes, then the
        CLI's cleanup closes again, then the GC finalises): the pool
        reference is detached *first*, so a second call is a no-op, and
        shutdown errors are swallowed — during interpreter teardown a
        broken pool's shutdown can raise, and a destructor must not.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            if wait:
                pool.shutdown(wait=True)
            else:
                pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def __del__(self):  # pragma: no cover - best-effort cleanup
        # Interpreter teardown must not join worker processes: a pool
        # that is mid-shutdown (or broken) can block exit indefinitely.
        try:
            self.close(wait=False)
        except Exception:
            pass

    # -- execution --------------------------------------------------------
    def map_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Any]
    ) -> List[Any]:
        if len(chunks) <= 1 or self.blacklisted:
            # Single chunk: nothing to overlap. Blacklisted: the pool
            # keeps breaking, stop feeding it.
            self.last_dispatch = {
                "chunks": len(chunks),
                "mode": "in-process",
                **({"blacklisted": True} if self.blacklisted else {}),
            }
            return [fn(chunk) for chunk in chunks]
        prepare_t0 = perf_counter()
        shipped, arena = _prepare_shipped(chunks)
        prepare_s = perf_counter() - prepare_t0
        try:
            if not self._can_ship(shipped[0]):
                self.fallbacks += 1
                self.last_dispatch = {
                    "chunks": len(chunks), "mode": "in-process"
                }
                return [fn(chunk) for chunk in chunks]
            return self._map_chunks_pooled(
                fn, chunks, shipped, arena, prepare_s
            )
        finally:
            if arena is not None:
                arena.destroy()

    def _map_chunks_pooled(
        self,
        fn: Callable[[Any], Any],
        chunks: Sequence[Any],
        shipped: Sequence[Any],
        arena,
        prepare_s: float = 0.0,
    ) -> List[Any]:
        """Pool dispatch with degraded-mode recovery.

        Chunks are submitted individually so a failure only loses *its*
        chunk: completed results are kept across a pool rebuild, chunks
        whose results cannot be pickled re-run in-process, and only the
        still-incomplete chunks are re-dispatched. A wave tolerates
        ``MAX_REBUILDS_PER_WAVE`` rebuilds before its remainder runs
        in-process.

        Workers receive ``shipped[i]`` — the shared-memory rewrite when
        an arena is active, otherwise the chunk itself — wrapped so the
        worker releases its arena views after each chunk. Every
        in-process path runs ``fn(chunks[i])`` on the originals, keeping
        degraded modes identical to the serial backend.
        """
        if arena is not None:
            from repro.mapreduce.shm import run_and_release

            submit_one = lambda pool, i: pool.submit(  # noqa: E731
                run_and_release, fn, shipped[i]
            )
        else:
            submit_one = lambda pool, i: pool.submit(  # noqa: E731
                fn, shipped[i]
            )
        results: List[Any] = [None] * len(chunks)
        pending = list(range(len(chunks)))
        wave_rebuilds = 0
        recovered = False
        submit_s = prepare_s
        while pending:
            pool = self._ensure_pool()
            try:
                submit_t0 = perf_counter()
                futures = [(i, submit_one(pool, i)) for i in pending]
                submit_s += perf_counter() - submit_t0
            except _PICKLE_ERRORS + _BROKEN_POOL_ERRORS:
                # Submission itself failed (rare: _can_ship probed only
                # the first chunk, or the pool died while idle). Run the
                # remainder in-process.
                self.fallbacks += 1
                recovered = True
                for i in pending:
                    results[i] = fn(chunks[i])
                break
            broken: List[int] = []
            unpicklable: List[int] = []
            for i, future in futures:
                # Cooperative cancellation point: a deadline or signal
                # stops the driver between task results, not mid-pickle.
                # The raise unwinds through map_chunks' finally (arena
                # destroyed); outstanding futures are cancelled by the
                # runner's close(wait=False) on the cleanup path.
                check_active()
                try:
                    results[i] = future.result()
                except _BROKEN_POOL_ERRORS:
                    broken.append(i)
                except _PICKLE_ERRORS as exc:
                    if not _is_serialization_error(exc):
                        # A genuine user-code error that merely shares a
                        # type with pickle failures: it is the task's
                        # outcome, not a dispatch problem.
                        raise
                    unpicklable.append(i)
            if unpicklable:
                # A task's *return value* would not cross the pipe; the
                # pool survives. Re-run just those chunks in-process,
                # keeping every result the pool did deliver.
                self.fallbacks += 1
                recovered = True
                for i in unpicklable:
                    results[i] = fn(chunks[i])
            if not broken:
                break
            # A worker died mid-wave and the pool is broken. Rebuild it
            # (once per wave) and re-dispatch only the lost chunks.
            self.pool_rebuilds += 1
            wave_rebuilds += 1
            recovered = True
            self._discard_pool()
            if self.pool_rebuilds >= BLACKLIST_REBUILDS:
                self.blacklisted = True
            if wave_rebuilds > MAX_REBUILDS_PER_WAVE or self.blacklisted:
                for i in broken:
                    results[i] = fn(chunks[i])
                break
            pending = broken
        # Chunk-preparation + submission time: the driver-side cost of
        # getting this wave onto the workers (shm packing, pickling
        # hand-off). Surfaced so the profiler can attribute it.
        self.last_dispatch = {
            "chunks": len(chunks),
            "mode": "pool",
            "submit_s": round(submit_s, 6),
            **({"recovered": True} if recovered else {}),
        }
        return results

    @staticmethod
    def _can_ship(chunk: Any) -> bool:
        """Cheap pre-flight: can this wave's payload cross a process?

        All chunks of a wave share the same job object and function
        references, so probing the first chunk catches the common failure
        (closures/lambdas as map/reduce functions) before any worker is
        involved.
        """
        try:
            pickle.dumps(chunk)
            return True
        except Exception:
            return False
