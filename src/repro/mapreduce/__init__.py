"""A faithful single-process MapReduce + HDFS simulator.

This package stands in for Apache Hadoop. It preserves the quantities the
SpatialHadoop evaluation is about — how many blocks a job reads, how many
records are shuffled, how many MapReduce rounds run, and how the per-task
work schedules over a cluster of N nodes — while running in one process.

The pieces mirror Hadoop's:

* :class:`FileSystem` — a block-structured file system. Files are split
  into blocks bounded by a configurable capacity; blocks carry optional
  metadata (a partition MBR, a serialised local index) exactly as
  SpatialHadoop stores its index information alongside HDFS blocks.
* :class:`Job` — the job configuration: map / combine / reduce functions,
  number of reducers, an input splitter hook (where SpatialHadoop's
  SpatialFileSplitter plugs in) and a record-reader hook (where the
  SpatialRecordReader plugs in).
* :class:`JobRunner` — executes jobs: split, map (with per-task isolation),
  combine, hash shuffle, sort, reduce, and an optional single-machine
  job-commit step (Hadoop's ``commitJob``, used by index building and the
  merge phases of several operations).
* :class:`ClusterModel` — converts measured per-task work into a simulated
  makespan on an N-node cluster, adding per-job startup overhead so that
  the round-count trade-offs the papers discuss are visible.
"""

from repro.mapreduce.counters import Counter, Counters
from repro.mapreduce.fs import Block, FileEntry, FileSystem
from repro.mapreduce.types import InputSplit
from repro.mapreduce.cluster import ClusterModel, TaskAttempt, TaskStats
from repro.mapreduce.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    resolve_workers,
)
from repro.mapreduce.checkpoint import (
    CancellationToken,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    CheckpointNotFoundError,
    DeadlineExceeded,
    DriverCrashed,
    RunCancelled,
    RunInterrupted,
)
from repro.mapreduce.faults import (
    DriverFault,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RandomFaults,
    StorageFault,
    TaskCorrupted,
    TaskTimeoutError,
    WorkerKilled,
    retry_backoff,
)
from repro.mapreduce.storage import (
    BlockUnavailableError,
    FsckIssue,
    FsckReport,
    Replica,
    StorageError,
    StorageManager,
    run_fsck,
)
from repro.mapreduce.job import Job, MapContext, ReduceContext
from repro.mapreduce.runtime import JobResult, JobRunner

__all__ = [
    "Block",
    "BlockUnavailableError",
    "CancellationToken",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointManager",
    "CheckpointNotFoundError",
    "ClusterModel",
    "Counter",
    "Counters",
    "DeadlineExceeded",
    "DriverCrashed",
    "DriverFault",
    "Executor",
    "FaultPlan",
    "FaultSpec",
    "FileEntry",
    "FileSystem",
    "FsckIssue",
    "FsckReport",
    "InjectedFault",
    "InputSplit",
    "Job",
    "JobResult",
    "JobRunner",
    "MapContext",
    "ParallelExecutor",
    "RandomFaults",
    "ReduceContext",
    "Replica",
    "RunCancelled",
    "RunInterrupted",
    "SerialExecutor",
    "StorageError",
    "StorageFault",
    "StorageManager",
    "TaskAttempt",
    "TaskCorrupted",
    "TaskStats",
    "TaskTimeoutError",
    "WorkerKilled",
    "make_executor",
    "resolve_workers",
    "retry_backoff",
    "run_fsck",
]
