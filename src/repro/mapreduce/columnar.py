"""Columnar payloads for sealed blocks.

A sealed block whose records are homogeneously :class:`Point` or
:class:`Rectangle` gets a :class:`ColumnarPayload`: the coordinates
transposed into flat float64 columns (NumPy arrays when available,
``array('d')`` otherwise). The payload serves three masters:

* **Batch kernels** — ``repro.geometry.vectorized`` filters a whole block
  with one mask instead of one Python call per record.
* **Durability** — :func:`block_payload_checksum` CRCs the raw column
  bytes (with a small header), so checksums cover the columnar bytes
  directly and are independent of pickle details *and* of which backend
  built the columns (both produce the same native float64 bytes).
* **Zero-copy dispatch** — ``repro.mapreduce.shm`` writes the columns
  into a shared-memory arena with :meth:`ColumnarPayload.write_into` and
  reconstructs zero-copy views in workers with
  :meth:`ColumnarPayload.from_buffer`.

Blocks with mixed or exotic record types simply get no payload
(:func:`ColumnarPayload.from_records` returns None) and every consumer
falls back to the scalar path.
"""

from __future__ import annotations

import zlib
from array import array
from typing import Any, List, Optional, Sequence, Tuple

from repro.geometry import vectorized
from repro.geometry.point import Point
from repro.geometry.rectangle import Rectangle

try:
    import numpy as _np
except Exception:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: Column names per payload kind, in buffer order.
KIND_COLUMNS = {
    "point": ("x", "y"),
    "rect": ("x1", "y1", "x2", "y2"),
}

_FLOAT_SIZE = 8

_column_from_iter = vectorized.column_from_iter

_profiler = None


def _phase(name: str):
    """Profiler phase scope, lazily bound.

    ``repro.observe.profile`` cannot be imported at module top: this
    module is reached from ``repro.mapreduce.__init__``, and the observe
    package initializer imports back into mapreduce. The profiler scope
    is a no-op unless a profiled task is in flight.
    """
    global _profiler
    if _profiler is None:
        from repro.observe import profile

        _profiler = profile
    return _profiler.phase(name)


class ColumnarPayload:
    """Flat float64 columns for one block's records.

    ``kind`` is ``"point"`` (columns x, y) or ``"rect"`` (columns x1, y1,
    x2, y2); ``count`` is the record count. Columns may be owned
    (``array('d')``/ndarray) or zero-copy views over an external buffer
    such as a shared-memory segment.
    """

    __slots__ = ("kind", "count", "columns")

    def __init__(self, kind: str, count: int, columns: Tuple[Any, ...]):
        self.kind = kind
        self.count = count
        self.columns = columns

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[Any]) -> Optional["ColumnarPayload"]:
        """Transpose a homogeneous Point/Rectangle list; None otherwise.

        Exact type checks (no subclasses): a subclass could carry extra
        state the columns would silently drop.
        """
        n = len(records)
        if n == 0:
            return None
        # One C-speed pass for the homogeneity check (set(map(type, ..))
        # beats a genexpr any() several-fold on large lists), then one
        # listcomp per column — generator feeding costs a frame switch
        # per item, which dominates at bulk sizes.
        kinds = set(map(type, records))
        if kinds == {Point}:
            xs = _column_from_iter([r.x for r in records], n)
            ys = _column_from_iter([r.y for r in records], n)
            return cls("point", n, (xs, ys))
        if kinds == {Rectangle}:
            return cls(
                "rect",
                n,
                (
                    _column_from_iter([r.x1 for r in records], n),
                    _column_from_iter([r.y1 for r in records], n),
                    _column_from_iter([r.x2 for r in records], n),
                    _column_from_iter([r.y2 for r in records], n),
                ),
            )
        return None

    @classmethod
    def from_buffer(
        cls, kind: str, count: int, buf, offset: int = 0
    ) -> "ColumnarPayload":
        """Zero-copy payload over ``buf`` (columns laid out consecutively)."""
        ncols = len(KIND_COLUMNS[kind])
        if _np is not None:
            cols = tuple(
                _np.frombuffer(
                    buf,
                    dtype=_np.float64,
                    count=count,
                    offset=offset + i * count * _FLOAT_SIZE,
                )
                for i in range(ncols)
            )
        else:
            view = memoryview(buf)
            cols = tuple(
                view[
                    offset + i * count * _FLOAT_SIZE:
                    offset + (i + 1) * count * _FLOAT_SIZE
                ].cast("d")
                for i in range(ncols)
            )
        return cls(kind, count, cols)

    @classmethod
    def _from_portable(
        cls, kind: str, count: int, raw: bytes
    ) -> "ColumnarPayload":
        payload = cls.from_buffer(kind, count, raw)
        # Rehydrate into owned columns so the pickled copy does not pin
        # the transport bytes (and stays writable-agnostic).
        if _np is not None:
            payload.columns = tuple(c.copy() for c in payload.columns)
        else:
            payload.columns = tuple(array("d", c) for c in payload.columns)
        return payload

    def __reduce__(self):
        # Portable pickle: raw bytes, independent of the column backend.
        return (
            ColumnarPayload._from_portable,
            (self.kind, self.count, self.tobytes()),
        )

    # ------------------------------------------------------------------
    # Bytes / durability
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self.count * _FLOAT_SIZE * len(self.columns)

    def tobytes(self) -> bytes:
        return b"".join(self._column_bytes(c) for c in self.columns)

    @staticmethod
    def _column_bytes(col) -> bytes:
        if _np is not None and isinstance(col, _np.ndarray):
            return col.tobytes()
        if isinstance(col, memoryview):
            return col.tobytes()
        return col.tobytes()

    def checksum(self) -> int:
        """CRC-32 over a kind/count header plus the raw column bytes."""
        crc = zlib.crc32(f"{self.kind}:{self.count}".encode("ascii"))
        for col in self.columns:
            crc = zlib.crc32(self._column_bytes(col), crc)
        return crc

    def write_into(self, buf, offset: int = 0) -> int:
        """Copy the columns into ``buf`` consecutively; returns end offset."""
        view = memoryview(buf)
        for col in self.columns:
            raw = self._column_bytes(col)
            view[offset:offset + len(raw)] = raw
            offset += len(raw)
        return offset

    # ------------------------------------------------------------------
    # Record views
    # ------------------------------------------------------------------
    def materialize(self) -> List[Any]:
        """Rebuild the record objects, in order.

        Coordinates go through ``float()`` so ndarray-backed columns
        yield plain-float records (``np.float64`` attributes would leak
        into answers and print differently than the scalar path).
        """
        with _phase("columnar-decode"):
            if self.kind == "point":
                xs, ys = self.columns
                return [
                    Point(float(xs[i]), float(ys[i]))
                    for i in range(self.count)
                ]
            x1s, y1s, x2s, y2s = self.columns
            return [
                Rectangle(
                    float(x1s[i]), float(y1s[i]), float(x2s[i]), float(y2s[i])
                )
                for i in range(self.count)
            ]

    # ------------------------------------------------------------------
    # Kernel dispatch
    # ------------------------------------------------------------------
    def indices_in(self, rect: Rectangle) -> List[int]:
        """Record indices whose shape MBR intersects ``rect``, in order."""
        with _phase("kernel"):
            if self.kind == "point":
                xs, ys = self.columns
                return vectorized.points_in_rect(xs, ys, rect)
            return vectorized.rects_intersect(*self.columns, rect)

    def indices_owned_in(self, rect: Rectangle, cell: Rectangle) -> List[int]:
        """Like :meth:`indices_in` plus reference-point dedup vs ``cell``."""
        with _phase("kernel"):
            if self.kind == "point":
                xs, ys = self.columns
                return vectorized.points_in_rect_owned(xs, ys, rect, cell)
            return vectorized.rects_intersect_owned(*self.columns, rect, cell)

    def distance_sq_to(self, query: Point):
        """Squared distance from every record's MBR to ``query``."""
        with _phase("kernel"):
            if self.kind == "point":
                xs, ys = self.columns
                return vectorized.point_distance_sq(xs, ys, query.x, query.y)
            return vectorized.rect_min_distance_sq(
                *self.columns, query.x, query.y
            )


def payload_of(block, expected_count: Optional[int] = None):
    """The block's usable columnar payload, or None.

    None when the block has no payload (legacy pickle, heterogeneous
    records), when vectorization is disabled, or when the payload has
    gone stale relative to the record list it was sealed over.
    """
    payload = getattr(block, "columnar", None)
    if payload is None or not vectorized.enabled():
        return None
    if expected_count is not None and payload.count != expected_count:
        return None
    return payload


def block_payload_checksum(block) -> int:
    """The checksum a block's payload should carry.

    Columnarizable records are checksummed over their raw column bytes
    (rebuilt fresh, so in-place mutation is detected); everything else
    falls back to the pickle-based record checksum. Deliberately
    *independent* of ``REPRO_VECTORIZE``: a workspace sealed in one mode
    must pass fsck in the other.
    """
    from repro.mapreduce.storage import checksum_records

    payload = ColumnarPayload.from_records(block.records)
    if payload is not None:
        return payload.checksum()
    return checksum_records(block.records)
