"""Deterministic fault injection for the MapReduce substrate.

Real SpatialHadoop inherits Hadoop's fault tolerance: tasks that crash are
re-executed, stragglers get speculative backups, and lost task trackers
only cost the attempts that ran on them. To test the equivalent machinery
in this simulator we need failures that are *scriptable and repeatable*:
a :class:`FaultPlan` decides, purely from ``(wave, task-index, attempt)``,
whether a task attempt

* ``crash``   — raises :class:`InjectedFault` before the task body runs,
* ``hang``    — runs normally but has extra CPU-seconds added to its
  charge, so it looks like a straggler (and trips per-attempt timeouts),
* ``corrupt`` — runs normally but returns an unusable result, exercising
  driver-side result validation,
* ``kill``    — terminates the worker process mid-chunk (``os._exit``),
  exercising :class:`BrokenProcessPool` recovery. In the serial backend,
  where exiting would kill the driver itself, the kill degrades to a
  ``worker-lost`` failure so both backends observe the same attempt
  history.

Plans are seeded and stateless: the same plan produces the same faults on
every run and on every backend, which is what lets the chaos tests assert
bit-identical output against a fault-free run.

Beyond task faults, plans can script *storage* faults against the
durable storage layer (:mod:`repro.mapreduce.storage`):

* ``losenode:<node>``   — datanode ``node`` dies; the namenode
  re-replicates the blocks it held, charged to the simulated makespan,
* ``corruptblock:<file>:<block>[:<replica>]`` — one stored copy of a
  block starts failing its checksum; reads fail over to a healthy
  replica.

Storage faults fire at most once each, at the start of the first job
that runs after their target exists (a ``corruptblock`` against a file
not yet written waits for it).

Plans can also script *driver* faults, keyed by the invocation's global
wave ordinal (wave 0 is the first map wave of the first job, wave 1 the
next wave dispatched, and so on across jobs and rounds):

* ``crashdriver:<wave>[:<fraction>]`` — the driver dies right after
  wave ``<wave>`` commits its checkpoint
  (:class:`~repro.mapreduce.checkpoint.DriverCrashed`); with a
  ``fraction`` in (0, 1], the just-committed checkpoint is first torn
  to that fraction of its bytes, exercising corrupt-checkpoint
  recovery on resume,
* ``hangdriver:<wave>[:<seconds>]`` — the driver stalls for that many
  *simulated* seconds at the wave boundary, charged to the active
  cancellation token's deadline clock (``--deadline``) so deadline
  tests are deterministic.

Driver faults fire at most once per (wave, plan-entry) and only on
*executed* waves — a resumed run replaying journaled waves never
re-fires the crash that killed it.

Plans can also script *service* faults against the multi-tenant query
service (:mod:`repro.serve`):

* ``burst:<tenant>:<n>`` — the named tenant submits ``n`` extra
  synthetic copies of its request in the same arrival instant,
  exercising admission control and load shedding,
* ``slowtenant:<tenant>:<seconds>`` — every request the named tenant
  executes is charged that many extra *simulated* seconds, turning it
  into a capacity hog the weighted-fair scheduler must contain.

Plans are built programmatically, parsed from a compact spec string
(``--faults`` / ``REPRO_FAULTS``), or both::

    crash:map:1                 # map task 1 crashes on its first attempt
    crash:map:1:1               # ... and again on its second attempt
    kill:map:2                  # the worker running map task 2 dies
    hang:reduce:0:0:30          # reduce task 0's first attempt +30 CPU s
    corrupt:map:*               # every map task's first result is garbage
    random:crash:0.05:42        # every attempt crashes with p=0.05, seed 42
    losenode:3                  # datanode 3 dies (blocks re-replicate)
    corruptblock:pts_idx:0      # replica 0 of block 0 of 'pts_idx' rots
    corruptblock:pts_idx:2:1    # replica 1 of block 2 of 'pts_idx' rots

Entries are comma-separated; task-fault fields are
``kind:wave:task[:attempt[:arg]]`` with ``*`` (or ``-1``) as a wildcard
for wave/task/attempt.
"""

from __future__ import annotations

import multiprocessing
import os
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Environment variable holding a fault-plan spec (chaos CI hook).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Recognised task-attempt fault kinds.
FAULT_KINDS = ("crash", "hang", "corrupt", "kill")

#: Recognised storage fault kinds (see repro.mapreduce.storage).
STORAGE_FAULT_KINDS = ("losenode", "corruptblock")

#: Recognised driver fault kinds (see repro.mapreduce.checkpoint).
DRIVER_FAULT_KINDS = ("crashdriver", "hangdriver")

#: Recognised service fault kinds (see repro.serve).
SERVICE_FAULT_KINDS = ("burst", "slowtenant")

#: CPU seconds a ``hang`` fault adds when the spec gives no explicit arg.
DEFAULT_HANG_SECONDS = 30.0

#: Exit code used for injected worker kills (distinguishable in waitpid).
KILL_EXIT_CODE = 137

#: Backoff schedule: ``min(cap, base * 2**(attempt-1)) * jitter`` with
#: jitter deterministically drawn from [0.5, 1.5). Seconds are *simulated*
#: (charged to the cluster-model makespan), never slept.
BACKOFF_BASE_S = 1.0
BACKOFF_CAP_S = 60.0


class InjectedFault(RuntimeError):
    """Raised by a task attempt the fault plan scripted to crash."""


class WorkerKilled(RuntimeError):
    """A task attempt was lost because its worker process died."""


class TaskCorrupted(RuntimeError):
    """A task attempt returned a result that failed validation."""


class TaskTimeoutError(RuntimeError):
    """A task exceeded the per-attempt timeout on its final attempt."""


class RemoteTaskError(RuntimeError):
    """Wraps a worker-side exception that could not be pickled back."""


def in_worker_process() -> bool:
    """True when running inside a multiprocessing worker (not the driver)."""
    return multiprocessing.parent_process() is not None


def retry_backoff(task_id: str, attempt: int, seed: int = 0) -> float:
    """Simulated backoff before ``attempt`` (1-based) of ``task_id``.

    Capped exponential with deterministic jitter: the jitter factor in
    [0.5, 1.5) is derived from a CRC-32 of (seed, task, attempt), so the
    schedule is identical across runs and backends yet decorrelated
    across tasks — the standard thundering-herd fix, minus the wall clock.
    """
    if attempt <= 0:
        return 0.0
    base = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2.0 ** (attempt - 1)))
    digest = zlib.crc32(f"{seed}|{task_id}|{attempt}".encode("utf-8"))
    jitter = 0.5 + (digest % 10_000) / 10_000.0
    return base * jitter


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: which attempt it hits and what it does.

    ``wave`` is ``"map"``, ``"reduce"`` or ``"*"``; ``task`` is the task's
    position in its wave (-1 = any); ``attempt`` is 0-based (-1 = any).
    ``seconds`` only matters for ``hang``.
    """

    kind: str
    wave: str = "*"
    task: int = -1
    attempt: int = 0
    seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.wave not in ("map", "reduce", "*"):
            raise ValueError(f"unknown wave {self.wave!r}")

    def matches(self, wave: str, task: int, attempt: int) -> bool:
        return (
            (self.wave == "*" or self.wave == wave)
            and (self.task < 0 or self.task == task)
            and (self.attempt < 0 or self.attempt == attempt)
        )


@dataclass(frozen=True)
class StorageFault:
    """One scripted storage event: a datanode loss or a replica rot.

    ``losenode`` uses ``node``; ``corruptblock`` uses ``file`` / ``block``
    / ``replica``. Each storage fault fires at most once, at the start of
    the first job that runs after its target exists.
    """

    kind: str
    node: int = -1
    file: str = ""
    block: int = -1
    replica: int = 0

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_FAULT_KINDS:
            raise ValueError(
                f"unknown storage fault kind {self.kind!r}; expected one "
                f"of {', '.join(STORAGE_FAULT_KINDS)}"
            )
        if self.kind == "losenode" and self.node < 0:
            raise ValueError("losenode needs a non-negative node index")
        if self.kind == "corruptblock":
            if not self.file:
                raise ValueError("corruptblock needs a file name")
            if self.block < 0 or self.replica < 0:
                raise ValueError(
                    "corruptblock needs non-negative block/replica indexes"
                )

    def describe(self) -> str:
        if self.kind == "losenode":
            return f"losenode:{self.node}"
        spec = f"corruptblock:{self.file}:{self.block}"
        return spec + (f":{self.replica}" if self.replica else "")


@dataclass(frozen=True)
class DriverFault:
    """One scripted driver death or stall at a wave boundary.

    ``wave`` is the invocation's global wave ordinal (-1 = every wave).
    ``arg`` is the torn-checkpoint fraction for ``crashdriver`` (None =
    the checkpoint commits intact before the crash) and the simulated
    stall seconds for ``hangdriver`` (None = ``DEFAULT_HANG_SECONDS``).
    """

    kind: str
    wave: int = -1
    arg: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in DRIVER_FAULT_KINDS:
            raise ValueError(
                f"unknown driver fault kind {self.kind!r}; expected one "
                f"of {', '.join(DRIVER_FAULT_KINDS)}"
            )
        if self.kind == "crashdriver" and self.arg is not None:
            if not 0.0 <= self.arg <= 1.0:
                raise ValueError(
                    "crashdriver checkpoint fraction must be in [0, 1], "
                    f"got {self.arg}"
                )
        if self.kind == "hangdriver" and self.arg is not None:
            if self.arg < 0:
                raise ValueError(
                    f"hangdriver seconds must be >= 0, got {self.arg}"
                )

    def matches(self, wave_index: int) -> bool:
        return self.wave < 0 or self.wave == wave_index

    def describe(self) -> str:
        spec = f"{self.kind}:{self.wave if self.wave >= 0 else '*'}"
        if self.arg is not None:
            return f"{spec}:{self.arg:g}"
        return spec


@dataclass(frozen=True)
class ServiceFault:
    """One scripted service-level event against :mod:`repro.serve`.

    * ``burst:<tenant>:<n>`` — the named tenant submits ``n`` extra
      synthetic requests in one arrival instant (clones of its current
      request), exercising admission control and load shedding,
    * ``slowtenant:<tenant>:<seconds>`` — every request the named tenant
      runs is charged ``seconds`` extra simulated time, turning it into
      a capacity hog that the weighted-fair scheduler must contain.

    Like task faults these are pure data: the :class:`QueryService`
    consults the plan deterministically, so service chaos tests replay
    bit-identically.
    """

    kind: str
    tenant: str = ""
    amount: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ValueError(
                f"unknown service fault kind {self.kind!r}; expected one "
                f"of {', '.join(SERVICE_FAULT_KINDS)}"
            )
        if not self.tenant:
            raise ValueError(f"{self.kind} needs a tenant name")
        if self.amount < 0:
            raise ValueError(
                f"{self.kind} amount must be >= 0, got {self.amount}"
            )
        if self.kind == "burst" and self.amount != int(self.amount):
            raise ValueError(
                f"burst count must be an integer, got {self.amount}"
            )

    def describe(self) -> str:
        return f"{self.kind}:{self.tenant}:{self.amount:g}"


@dataclass(frozen=True)
class RandomFaults:
    """Seeded background fault rate: each attempt fails with ``rate``.

    The decision is a pure hash of (seed, wave, task, attempt), so a
    given attempt either always faults or never does — rerunning the
    same plan reproduces the same chaos.
    """

    kind: str
    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    def hits(self, wave: str, task: int, attempt: int) -> bool:
        digest = zlib.crc32(
            f"{self.seed}|{wave}|{task}|{attempt}".encode("utf-8")
        )
        return (digest % 1_000_000) < self.rate * 1_000_000


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of task-attempt faults.

    Stateless and picklable: the plan ships to worker processes inside
    the job config, and both the driver (serial backend) and the workers
    consult it with the same ``(wave, task, attempt)`` triple.
    """

    specs: Tuple[FaultSpec, ...] = ()
    random: Tuple[RandomFaults, ...] = ()
    seed: int = 0
    storage: Tuple[StorageFault, ...] = ()
    driver: Tuple[DriverFault, ...] = ()
    service: Tuple[ServiceFault, ...] = ()

    @classmethod
    def parse(cls, text: str) -> Optional["FaultPlan"]:
        """Parse a ``--faults`` / ``REPRO_FAULTS`` spec string.

        Returns ``None`` for an empty spec. See the module docstring for
        the grammar.
        """
        specs: List[FaultSpec] = []
        random: List[RandomFaults] = []
        storage: List[StorageFault] = []
        driver: List[DriverFault] = []
        service: List[ServiceFault] = []
        seed = 0
        for raw in text.split(","):
            entry = raw.strip()
            if not entry:
                continue
            fields = entry.split(":")
            head = fields[0].lower()
            if head == "seed":
                seed = _int_field(entry, fields, 1, "seed")
                continue
            if head == "losenode":
                if len(fields) != 2:
                    raise ValueError(
                        f"bad storage fault entry {entry!r}; expected "
                        "losenode:<node>"
                    )
                storage.append(
                    StorageFault(
                        kind="losenode",
                        node=_int_field(entry, fields, 1, "node"),
                    )
                )
                continue
            if head == "corruptblock":
                if len(fields) < 3 or len(fields) > 4:
                    raise ValueError(
                        f"bad storage fault entry {entry!r}; expected "
                        "corruptblock:<file>:<block>[:<replica>]"
                    )
                storage.append(
                    StorageFault(
                        kind="corruptblock",
                        file=fields[1],
                        block=_int_field(entry, fields, 2, "block"),
                        replica=_int_field(entry, fields, 3, "replica")
                        if len(fields) > 3
                        else 0,
                    )
                )
                continue
            if head in DRIVER_FAULT_KINDS:
                if len(fields) < 2 or len(fields) > 3:
                    raise ValueError(
                        f"bad driver fault entry {entry!r}; expected "
                        f"{head}:<wave>[:<arg>]"
                    )
                driver.append(
                    DriverFault(
                        kind=head,
                        wave=_index_field(entry, fields, 1),
                        arg=_float_field(entry, fields, 2, "arg")
                        if len(fields) > 2
                        else None,
                    )
                )
                continue
            if head in SERVICE_FAULT_KINDS:
                if len(fields) != 3:
                    raise ValueError(
                        f"bad service fault entry {entry!r}; expected "
                        f"{head}:<tenant>:"
                        + ("<n>" if head == "burst" else "<seconds>")
                    )
                service.append(
                    ServiceFault(
                        kind=head,
                        tenant=fields[1],
                        amount=_float_field(entry, fields, 2, "amount"),
                    )
                )
                continue
            if head == "random":
                if len(fields) < 3 or len(fields) > 4:
                    raise ValueError(
                        f"bad random fault entry {entry!r}; expected "
                        "random:<kind>:<rate>[:<seed>]"
                    )
                random.append(
                    RandomFaults(
                        kind=fields[1].lower(),
                        rate=_float_field(entry, fields, 2, "rate"),
                        seed=_int_field(entry, fields, 3, "seed")
                        if len(fields) > 3
                        else 0,
                    )
                )
                continue
            if len(fields) < 2 or len(fields) > 5:
                raise ValueError(
                    f"bad fault entry {entry!r}; expected "
                    "kind:wave:task[:attempt[:seconds]]"
                )
            specs.append(
                FaultSpec(
                    kind=head,
                    wave=fields[1].lower() if len(fields) > 1 else "*",
                    task=_index_field(entry, fields, 2),
                    attempt=_index_field(entry, fields, 3)
                    if len(fields) > 3
                    else 0,
                    seconds=_float_field(entry, fields, 4, "seconds")
                    if len(fields) > 4
                    else DEFAULT_HANG_SECONDS,
                )
            )
        if (
            not specs
            and not random
            and not storage
            and not driver
            and not service
        ):
            return None
        return cls(
            specs=tuple(specs),
            random=tuple(random),
            seed=seed,
            storage=tuple(storage),
            driver=tuple(driver),
            service=tuple(service),
        )

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan scripted by ``$REPRO_FAULTS``, or ``None``."""
        spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
        if not spec:
            return None
        return cls.parse(spec)

    def lookup(self, wave: str, task: int, attempt: int) -> Optional[FaultSpec]:
        """The fault scripted for this attempt, or ``None``.

        Explicit specs win over random background faults; the first
        matching entry decides, so plans read top to bottom.
        """
        for spec in self.specs:
            if spec.matches(wave, task, attempt):
                return spec
        for rnd in self.random:
            if rnd.hits(wave, task, attempt):
                return FaultSpec(kind=rnd.kind, wave=wave, task=task,
                                 attempt=attempt)
        return None

    def describe(self) -> str:
        parts = [
            f"{s.kind}:{s.wave}:{s.task}"
            + (f":{s.attempt}" if s.attempt != 0 else "")
            for s in self.specs
        ]
        parts.extend(f"random:{r.kind}:{r.rate}:{r.seed}" for r in self.random)
        parts.extend(s.describe() for s in self.storage)
        parts.extend(d.describe() for d in getattr(self, "driver", ()))
        parts.extend(s.describe() for s in getattr(self, "service", ()))
        return ",".join(parts) or "<empty>"

    def driver_at(self, wave_index: int) -> List[Tuple[int, DriverFault]]:
        """Driver faults scripted for global wave ``wave_index``.

        Returns ``(plan_position, fault)`` pairs; the position keys the
        fire-once bookkeeping (and the checkpoint manifest's
        fault-plan-position record).
        """
        return [
            (pos, fault)
            for pos, fault in enumerate(getattr(self, "driver", ()))
            if fault.matches(wave_index)
        ]

    def burst_for(self, tenant: str) -> int:
        """Synthetic extra requests scripted for ``tenant`` (0 if none)."""
        return int(
            sum(
                f.amount
                for f in getattr(self, "service", ())
                if f.kind == "burst" and f.tenant == tenant
            )
        )

    def slowdown_for(self, tenant: str) -> float:
        """Extra simulated seconds every request of ``tenant`` is charged."""
        return sum(
            f.amount
            for f in getattr(self, "service", ())
            if f.kind == "slowtenant" and f.tenant == tenant
        )


def resolve_faults(value) -> Optional[FaultPlan]:
    """Coerce a faults knob (plan, spec string, or None) into a plan.

    ``None`` defers to ``$REPRO_FAULTS`` so chaos CI can inject failures
    without touching call sites — mirroring how worker counts resolve.
    """
    if value is None:
        return FaultPlan.from_env()
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, str):
        return FaultPlan.parse(value)
    raise TypeError(
        f"faults must be a FaultPlan, a spec string or None, got "
        f"{type(value).__name__}"
    )


def _index_field(entry: str, fields: List[str], pos: int) -> int:
    if pos >= len(fields):
        return -1
    token = fields[pos].strip()
    if token in ("*", ""):
        return -1
    try:
        return int(token)
    except ValueError:
        raise ValueError(
            f"bad index {token!r} in fault entry {entry!r}"
        ) from None


def _int_field(entry: str, fields: List[str], pos: int, name: str) -> int:
    try:
        return int(fields[pos])
    except (IndexError, ValueError):
        raise ValueError(
            f"bad {name} in fault entry {entry!r}"
        ) from None


def _float_field(entry: str, fields: List[str], pos: int, name: str) -> float:
    try:
        return float(fields[pos])
    except (IndexError, ValueError):
        raise ValueError(
            f"bad {name} in fault entry {entry!r}"
        ) from None
