"""Zero-copy chunk dispatch over POSIX shared memory.

The parallel executor normally pickles every chunk — job, reader and the
full record lists of every split — into each worker. For blocks that
carry a :class:`~repro.mapreduce.columnar.ColumnarPayload`, that is pure
waste: the payload already *is* a flat buffer. This module writes the
payloads of one wave into a single ``multiprocessing.shared_memory``
segment (the *arena*) and ships each split with a :class:`ShmBlock` — a
tiny stand-in naming the segment, the column layout and a byte offset —
instead of the records. Workers attach the segment once per process,
rebuild zero-copy column views, and materialize record objects only when
a map function actually iterates them.

Lifecycle is strictly wave-scoped and deterministic:

* the driver creates the arena in ``map_chunks``, and destroys it
  (close + unlink) in a ``finally`` as soon as every chunk result has
  been collected — including on the broken-pool and fallback paths;
* workers release their column views and close their attachment at the
  end of each chunk (:func:`run_and_release`), so an idle pool holds no
  mappings;
* every in-process fallback (unpicklable results, pool rebuild budget
  exhausted, blacklisting) runs on the *original* chunks, never on the
  shared-memory stand-ins, so degraded modes are byte-for-byte the
  serial path.

A module-level registry of created segment names backs the leak tests:
:func:`live_segments` must be empty once no wave is in flight.

Shipping is opt-out via ``REPRO_SHM=0`` and implies vectorized mode —
without the batch kernels the stand-ins would just add materialization
cost. Chunks that do not match the map-wave payload shape, and splits
whose blocks carry no usable payload, pass through untouched.
"""

from __future__ import annotations

import os
from dataclasses import replace
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.geometry import vectorized
from repro.mapreduce.columnar import ColumnarPayload, payload_of

#: Set to ``0``/``false``/``off``/``no`` to pickle records the plain way.
SHM_ENV_VAR = "REPRO_SHM"

_OFF_VALUES = {"0", "false", "off", "no"}

#: Names of segments created (and not yet destroyed) by this process.
_CREATED: set = set()

#: Per-process cache of attached segments, keyed by segment name.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def enabled() -> bool:
    """Shared-memory shipping on? Requires vectorized mode."""
    if os.environ.get(SHM_ENV_VAR, "").strip().lower() in _OFF_VALUES:
        return False
    return vectorized.enabled()


def live_segments() -> List[str]:
    """Names of arena segments this process created and never destroyed."""
    return sorted(_CREATED)


class ShmArena:
    """One wave's shared-memory segment, holding packed column payloads.

    Created by the driver, destroyed by the driver; workers only ever
    attach. ``destroy`` is idempotent and also runs from ``__del__`` so
    an exception between creation and the executor's ``finally`` cannot
    leak the segment.
    """

    def __init__(self, nbytes: int):
        self._seg = shared_memory.SharedMemory(
            create=True, size=max(1, nbytes)
        )
        self.name = self._seg.name
        self._cursor = 0
        self._destroyed = False
        _CREATED.add(self.name)

    def add(self, payload: ColumnarPayload) -> int:
        """Copy ``payload``'s columns into the arena; returns their offset."""
        offset = self._cursor
        self._cursor = payload.write_into(self._seg.buf, offset)
        return offset

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        _CREATED.discard(self.name)
        try:
            self._seg.close()
        except Exception:
            pass
        try:
            self._seg.unlink()
        except Exception:
            pass

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.destroy()
        except Exception:
            pass


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment, once per process, tracker-neutralised.

    CPython (< 3.13) registers *attach-mode* segments with the resource
    tracker too, so a worker attaching would make the shared tracker
    process unlink an arena the driver still owns — and the duplicate
    register/unregister pairs from several workers unbalance its cache.
    Registration is suppressed for the duration of the attach (the
    driver, which created the segment, is its sole owner).
    """
    seg = _ATTACHED.get(name)
    if seg is None:
        from multiprocessing import resource_tracker

        from repro.observe import profile

        original = resource_tracker.register

        def _skip_shared_memory(rname, rtype):
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _skip_shared_memory
        with profile.phase("shm-attach"):
            try:
                seg = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        _ATTACHED[name] = seg
    return seg


class _LazyMetadata(dict):
    """Block metadata whose local index is rebuilt on first access.

    A sealed block's local R-tree pickles as the whole tree — entries,
    nodes, one record reference each — which defeats the point of not
    shipping the records. The stand-in ships the *build parameters*
    instead (a flag plus the node capacity) and rebuilds the tree from
    the materialized records on first ``get("local_index")``. STR bulk
    load is deterministic, so the rebuilt tree answers queries exactly
    like the original.
    """

    def __init__(self, base: dict, block: "ShmBlock", capacity: int):
        super().__init__(base)
        self._block = block
        self._capacity = capacity

    def _ensure_index(self) -> None:
        if dict.__contains__(self, "local_index"):
            return
        from repro.index.partitioners.base import shape_mbr
        from repro.index.rtree import RTree, RTreeEntry

        records = self._block.records
        dict.__setitem__(
            self,
            "local_index",
            RTree(
                [RTreeEntry(mbr=shape_mbr(r), record=r) for r in records],
                node_capacity=self._capacity,
            ),
        )

    def __getitem__(self, key):
        if key == "local_index" and self._block.has_index:
            self._ensure_index()
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        if key == "local_index" and self._block.has_index:
            self._ensure_index()
        return dict.get(self, key, default)


class ShmBlock:
    """A shared-memory stand-in for one sealed :class:`Block`.

    Pickles as a handful of scalars plus the (index-free) metadata dict.
    ``columnar`` attaches the arena lazily and builds zero-copy column
    views; ``records`` materializes real record objects from them (and
    the lazily rebuilt local index shares those objects). ``release``
    drops the views so the worker's attachment can close cleanly.
    """

    __slots__ = (
        "shm_name", "kind", "count", "offset", "num_records",
        "has_index", "index_capacity", "_base_metadata",
        "_columnar", "_records", "_metadata",
    )

    def __init__(
        self,
        shm_name: str,
        kind: str,
        count: int,
        offset: int,
        num_records: int,
        base_metadata: dict,
        has_index: bool,
        index_capacity: int,
    ):
        self.shm_name = shm_name
        self.kind = kind
        self.count = count
        self.offset = offset
        self.num_records = num_records
        self.has_index = has_index
        self.index_capacity = index_capacity
        self._base_metadata = base_metadata
        self._columnar = None
        self._records = None
        self._metadata = None

    def __getstate__(self):
        return (
            self.shm_name, self.kind, self.count, self.offset,
            self.num_records, self._base_metadata, self.has_index,
            self.index_capacity,
        )

    def __setstate__(self, state):
        self.__init__(*state)

    def __len__(self) -> int:
        return self.num_records

    @property
    def columnar(self) -> ColumnarPayload:
        payload = self._columnar
        if payload is None:
            seg = _attach(self.shm_name)
            payload = self._columnar = ColumnarPayload.from_buffer(
                self.kind, self.count, seg.buf, self.offset
            )
        return payload

    @property
    def records(self) -> List[Any]:
        records = self._records
        if records is None:
            records = self._records = self.columnar.materialize()
        return records

    @property
    def metadata(self) -> dict:
        metadata = self._metadata
        if metadata is None:
            metadata = self._metadata = _LazyMetadata(
                self._base_metadata, self, self.index_capacity
            )
        return metadata

    def release(self) -> None:
        """Drop the zero-copy column views (records stay usable)."""
        self._columnar = None

    def __iter__(self):
        return iter(self.records)


# ----------------------------------------------------------------------
# Driver side: building the shipped chunks
# ----------------------------------------------------------------------
def _is_map_chunk(chunk: Any) -> bool:
    """Does this chunk match the map-wave payload shape?

    Map chunks are ``(job, reader, tasks)`` with tasks of
    ``(index, attempt, InputSplit)``; reduce chunks are 2-tuples and pass
    through untouched (their payloads are shuffled pairs, not blocks).
    """
    if not (isinstance(chunk, tuple) and len(chunk) == 3):
        return False
    tasks = chunk[2]
    if not isinstance(tasks, (list, tuple)):
        return False
    for task in tasks:
        if not (isinstance(task, (list, tuple)) and len(task) == 3):
            return False
        if not hasattr(task[2], "block"):
            return False
    return True


def prepare_chunks(
    chunks: Sequence[Any],
) -> Tuple[List[Any], Optional[ShmArena]]:
    """Rewrite a wave's chunks to ship columnar blocks via shared memory.

    Returns ``(shipped, arena)``. When nothing is eligible — reduce
    wave, no columnar payloads, shipping disabled — ``shipped`` is the
    original chunks and ``arena`` is None. Otherwise every split whose
    block carries a usable payload is rebuilt around a :class:`ShmBlock`
    (blocks deduplicated by identity, so a block read by several splits
    is written once), and the caller owns the arena: it must call
    ``arena.destroy()`` once all chunk results are in.
    """
    chunks = list(chunks)
    if not enabled() or not all(_is_map_chunk(c) for c in chunks):
        return chunks, None

    payloads: Dict[int, ColumnarPayload] = {}
    blocks: Dict[int, Any] = {}
    for chunk in chunks:
        for _, _, split in chunk[2]:
            block = split.block
            key = id(block)
            if key in payloads:
                continue
            payload = payload_of(block, len(block.records))
            if payload is not None:
                payloads[key] = payload
                blocks[key] = block
    if not payloads:
        return chunks, None

    arena = ShmArena(sum(p.nbytes for p in payloads.values()))
    try:
        stand_ins: Dict[int, ShmBlock] = {}
        for key, payload in payloads.items():
            block = blocks[key]
            metadata = dict(block.metadata)
            local_index = metadata.pop("local_index", None)
            stand_ins[key] = ShmBlock(
                shm_name=arena.name,
                kind=payload.kind,
                count=payload.count,
                offset=arena.add(payload),
                num_records=len(block.records),
                base_metadata=metadata,
                has_index=local_index is not None,
                index_capacity=getattr(local_index, "node_capacity", 32),
            )
        shipped = []
        for chunk in chunks:
            job, reader, tasks = chunk
            shipped.append((
                job,
                reader,
                [
                    (
                        index,
                        attempt,
                        replace(split, block=stand_ins[id(split.block)])
                        if id(split.block) in stand_ins
                        else split,
                    )
                    for index, attempt, split in tasks
                ],
            ))
        return shipped, arena
    except Exception:
        arena.destroy()
        raise


# ----------------------------------------------------------------------
# Worker side: execution wrapper
# ----------------------------------------------------------------------
def run_and_release(fn, chunk):
    """Run one shipped chunk, then release its shared-memory views.

    Submitted in place of the bare chunk function whenever an arena is in
    play. The ``finally`` drops every :class:`ShmBlock`'s column views
    and closes the attachments they pinned, so worker processes hold no
    mapping between chunks (and none when the driver unlinks the arena).
    """
    try:
        return fn(chunk)
    finally:
        _release_chunk(chunk)


def _release_chunk(chunk) -> None:
    names = set()
    if isinstance(chunk, tuple) and len(chunk) == 3:
        for task in chunk[2]:
            block = getattr(task[2], "block", None)
            if isinstance(block, ShmBlock):
                names.add(block.shm_name)
                block.release()
    for name in names:
        seg = _ATTACHED.pop(name, None)
        if seg is None:
            continue
        try:
            seg.close()
        except BufferError:  # pragma: no cover - a view escaped the chunk
            _ATTACHED[name] = seg
