"""Block-structured in-memory file system (the HDFS stand-in).

Files are sequences of records grouped into *blocks*. The block is the unit
of parallelism: the default input splitter creates one map task per block,
exactly as Hadoop creates one map task per 64 MB HDFS block. Block capacity
is expressed in records (the simulator's proxy for the 64 MB limit) so that
experiments can sweep "input size in blocks" deterministically.

Blocks carry a metadata mapping. SpatialHadoop's storage layer uses it to
attach the partition MBR (the global-index entry) and the serialised local
index to each block.

Durability mirrors HDFS: every written block is *sealed* — checksummed
and placed as N replicas across the simulated datanodes — by the file
system's :class:`~repro.mapreduce.storage.StorageManager`, and reads
verify replica health, failing over past dead-node or corrupt copies
(see :mod:`repro.mapreduce.storage`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.mapreduce.storage import (
    DEFAULT_DATANODES,
    DEFAULT_REPLICATION,
    Replica,
    StorageManager,
)

DEFAULT_BLOCK_CAPACITY = 10_000


@dataclass
class Block:
    """One block of a file: a record list plus optional metadata.

    ``checksum`` (payload CRC-32) and ``replicas`` (where the block's
    copies live) are stamped by :meth:`StorageManager.seal_block` when
    the block enters the file system; blocks from workspaces pickled
    before the storage layer existed are adopted lazily on first read.

    ``columnar`` is the optional vectorized-execution payload (see
    :mod:`repro.mapreduce.columnar`): the record coordinates transposed
    into flat float64 columns, attached at seal time when the records
    are homogeneously points or rectangles. The checksum covers the
    columnar bytes directly for such blocks. Access it through
    ``getattr(block, "columnar", None)`` — blocks unpickled from older
    workspaces lack the attribute entirely.
    """

    records: List[Any]
    metadata: Dict[str, Any] = field(default_factory=dict)
    checksum: Optional[int] = None
    replicas: List[Replica] = field(default_factory=list)
    columnar: Optional[Any] = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)


@dataclass
class FileEntry:
    """Namenode-side description of one file."""

    name: str
    blocks: List[Block] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_records(self) -> int:
        return sum(len(b) for b in self.blocks)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def records(self) -> Iterator[Any]:
        for block in self.blocks:
            yield from block.records


class FileSystem:
    """An in-memory namespace of block-structured files.

    ``num_datanodes`` / ``replication`` configure the durable storage
    layer: every block is checksummed and stored as (up to)
    ``replication`` replicas spread round-robin over the simulated
    datanodes, and reads verify replica health before returning data.
    """

    def __init__(
        self,
        default_block_capacity: int = DEFAULT_BLOCK_CAPACITY,
        num_datanodes: int = DEFAULT_DATANODES,
        replication: int = DEFAULT_REPLICATION,
    ):
        if default_block_capacity <= 0:
            raise ValueError("block capacity must be positive")
        self._files: Dict[str, FileEntry] = {}
        self._versions: Dict[str, int] = {}
        self._mutation_count = 0
        self.default_block_capacity = default_block_capacity
        self.storage = StorageManager(
            num_nodes=num_datanodes, replication=replication
        )

    def __setstate__(self, state):
        # Workspaces pickled before the durable storage layer existed
        # must keep loading: attach a default manager and adopt (seal +
        # place) every existing block.
        self.__dict__.update(state)
        if "storage" not in state:
            self.storage = StorageManager()
            for entry in self._files.values():
                self.storage.seal_file(entry)
        # Workspaces pickled before namespace versioning existed.
        if "_versions" not in state:
            self._versions = {name: 1 for name in self._files}
            self._mutation_count = len(self._files)

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def delete(self, name: str) -> bool:
        """Remove ``name``; returns True when the file existed."""
        if self._files.pop(name, None) is None:
            return False
        self._bump_version(name)
        return True

    def version(self, name: str) -> int:
        """Monotonic version of ``name``'s content, 0 if never written.

        Bumped on every create and delete, so a cache entry recording
        the versions of the files it read can detect any later mutation
        of the namespace (including delete-then-recreate) by comparing
        versions — the invalidation hook for :mod:`repro.serve`.
        """
        return self._versions.get(name, 0)

    @property
    def mutation_count(self) -> int:
        """Total namespace mutations (creates + deletes) ever applied."""
        return self._mutation_count

    def _bump_version(self, name: str) -> None:
        self._versions[name] = self._versions.get(name, 0) + 1
        self._mutation_count += 1

    def get(self, name: str) -> FileEntry:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(f"no such file: {name!r}") from None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def create_file(
        self,
        name: str,
        records: Iterable[Any],
        block_capacity: Optional[int] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> FileEntry:
        """Load ``records`` into a new file, chunked into capacity-bound blocks.

        This is the plain Hadoop loader: records are packed in arrival order
        with no regard for their spatial location (non-spatial partitioning).
        """
        if self.exists(name):
            raise FileExistsError(f"file already exists: {name!r}")
        capacity = (
            self.default_block_capacity if block_capacity is None else block_capacity
        )
        if capacity <= 0:
            raise ValueError("block capacity must be positive")
        entry = FileEntry(name=name, metadata=dict(metadata or {}))
        current: List[Any] = []
        for record in records:
            current.append(record)
            if len(current) >= capacity:
                entry.blocks.append(Block(records=current))
                current = []
        if current:
            entry.blocks.append(Block(records=current))
        self.storage.seal_file(entry)
        self._files[name] = entry
        self._bump_version(name)
        return entry

    def create_file_from_blocks(
        self,
        name: str,
        blocks: Iterable[Block],
        metadata: Optional[Dict[str, Any]] = None,
    ) -> FileEntry:
        """Install pre-built blocks (used by spatial loaders/index writers)."""
        if self.exists(name):
            raise FileExistsError(f"file already exists: {name!r}")
        entry = FileEntry(
            name=name, blocks=list(blocks), metadata=dict(metadata or {})
        )
        self.storage.seal_file(entry)
        self._files[name] = entry
        self._bump_version(name)
        return entry

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def verify_block_read(self, name: str, index: int, block: Block):
        """Verify one block is readable; returns (failovers, corrupt).

        Routes the read past dead-node and corrupt replicas to the first
        healthy copy (HDFS read failover); raises
        :class:`~repro.mapreduce.storage.BlockUnavailableError` when no
        healthy replica is left.
        """
        return self.storage.verify_block(name, index, block)

    def verify_file_read(self, name: str):
        """Verify every block of ``name``; returns (failovers, corrupt)."""
        failovers = 0
        corrupt = 0
        for index, block in enumerate(self.get(name).blocks):
            f, c = self.verify_block_read(name, index, block)
            failovers += f
            corrupt += c
        return failovers, corrupt

    def read_records(self, name: str) -> List[Any]:
        """All records of a file in block order (a verified full scan)."""
        self.verify_file_read(name)
        return list(self.get(name).records())

    def num_records(self, name: str) -> int:
        return self.get(name).num_records

    def num_blocks(self, name: str) -> int:
        return self.get(name).num_blocks
