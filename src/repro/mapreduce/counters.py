"""Job counters, mirroring Hadoop's counter facility."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Counter:
    """Well-known counter names used by the runtime itself."""

    MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
    MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
    COMBINE_INPUT_RECORDS = "COMBINE_INPUT_RECORDS"
    COMBINE_OUTPUT_RECORDS = "COMBINE_OUTPUT_RECORDS"
    REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
    REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
    SHUFFLE_RECORDS = "SHUFFLE_RECORDS"
    SHUFFLE_BYTES = "SHUFFLE_BYTES"
    BLOCKS_TOTAL = "BLOCKS_TOTAL"
    BLOCKS_READ = "BLOCKS_READ"
    BLOCKS_PRUNED = "BLOCKS_PRUNED"
    OUTPUT_RECORDS = "OUTPUT_RECORDS"
    MAP_TASKS = "MAP_TASKS"
    REDUCE_TASKS = "REDUCE_TASKS"


class Counters:
    """A named multi-set of monotonically increasing counters."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = defaultdict(int)

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` (which may be any integer >= 0) to ``name``."""
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative: {amount}")
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        """Accumulate every counter from ``other`` into this instance."""
        for name, value in other.items():
            self._values[name] += value

    def merge_dict(self, values: Dict[str, int]) -> None:
        """Accumulate a plain ``{name: value}`` mapping.

        Task results cross process boundaries as plain dicts (cheaper to
        pickle than a :class:`Counters`); the driver folds them back in
        with this method. Addition commutes, so the merged totals are
        identical no matter which backend ran the tasks. Values are
        validated like :meth:`increment`: counters are monotone, and a
        buggy task must not silently decrement driver-side totals.
        """
        for name, value in values.items():
            if value < 0:
                raise ValueError(
                    f"counter {name!r} merged a negative value: {value}"
                )
            self._values[name] += value

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.items())
        return f"Counters({inner})"
