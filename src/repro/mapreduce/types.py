"""Shared datatypes of the MapReduce runtime."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.mapreduce.fs import Block


@dataclass(frozen=True)
class InputSplit:
    """The unit of work of one map task.

    ``key`` is what the map function receives as its input key. The default
    splitter passes the block index; SpatialHadoop's splitter passes the
    partition cell (an MBR) so map functions can implement per-partition
    pruning rules, exactly as in the paper's pseudo-code (``MAP(k: Rectangle,
    ...)``).
    """

    file: str
    block_index: int
    block: Block
    key: Any = None

    @property
    def metadata(self) -> Dict[str, Any]:
        return self.block.metadata

    @property
    def cell(self) -> Optional[Any]:
        """The partition MBR for spatially partitioned files, else None."""
        return self.block.metadata.get("cell")
