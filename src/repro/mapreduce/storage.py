"""The durable storage layer: replicated, checksummed blocks + fsck.

Real SpatialHadoop inherits HDFS's durability contract: every block is
checksummed on write, verified on read, and stored as N replicas across
the cluster's datanodes; when a datanode dies the namenode re-replicates
the blocks it held, and ``hdfs fsck`` walks the namespace reporting (and
repairing) missing, corrupt and under-replicated blocks. This module
gives the simulator the same contract:

* :class:`StorageManager` — the namenode's replica map. Every block the
  file system writes is *sealed*: a CRC-32 of its record payload is
  recorded, local/global index structures get their own checksums, and
  the block is placed as ``replication`` replicas round-robin across the
  simulated datanodes.
* Reads verify replica health first (see :meth:`StorageManager.
  verify_block`): replicas on dead nodes or with failed checksums are
  skipped and the read *fails over* to the next healthy copy — the job
  sees identical data, only the ``READ_FAILOVERS`` /
  ``BLOCKS_CORRUPT_DETECTED`` metrics and the makespan notice. A block
  with no healthy replica left raises :class:`BlockUnavailableError`.
* :meth:`StorageManager.lose_node` kills a datanode and immediately
  re-replicates every surviving under-replicated block (HDFS namenode
  behaviour), returning the simulated seconds the repair traffic cost.
* :func:`run_fsck` is ``hdfs fsck`` for the workspace: it deep-verifies
  every block's payload checksum, replica health and local/global index
  checksums, and with ``repair=True`` re-replicates, drops dead/corrupt
  replicas and rebuilds local indexes from the surviving records.

The corruption model matches the simulation's single-process reality:
record lists live once in memory, so "corrupting replica r" marks that
replica's *stored copy* as failing its checksum rather than mutating the
shared objects — exactly what a flipped byte on one datanode's disk
looks like from the namenode. Deterministic ``losenode:<node>`` and
``corruptblock:<file>:<block>[:<replica>]`` faults are injected through
the :class:`~repro.mapreduce.faults.FaultPlan` grammar.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Default datanode count (mirrors ClusterModel.num_nodes's default).
DEFAULT_DATANODES = 25

#: HDFS's default replication factor.
DEFAULT_REPLICATION = 3


class StorageError(RuntimeError):
    """Base class for durable-storage failures."""


class BlockUnavailableError(StorageError):
    """No healthy replica of a block is left to read."""


# ----------------------------------------------------------------------
# Checksums
# ----------------------------------------------------------------------
def checksum_records(records: List[Any]) -> int:
    """CRC-32 of a block's record payload.

    Computed over the pickled record list — the simulator's stand-in for
    the on-disk byte stream HDFS checksums per 512-byte chunk.
    """
    try:
        payload = pickle.dumps(records, protocol=4)
    except Exception:
        # Unpicklable records (driver-only test doubles): checksum their
        # reprs so integrity tracking still works.
        payload = repr(records).encode("utf-8", "replace")
    return zlib.crc32(payload)


def local_index_checksum(local_index: Any) -> int:
    """CRC-32 of a local index's canonical form (entry MBRs, in order)."""
    text = ";".join(str(e.mbr) for e in local_index.all_entries())
    return zlib.crc32(text.encode("utf-8"))


def global_index_checksum(gindex: Any) -> int:
    """CRC-32 of a global index's canonical form (cells, in order)."""
    parts = [f"{gindex.technique}|{gindex.disjoint}"]
    parts.extend(
        f"{c.cell_id}:{c.mbr}:{c.num_records}:{c.content_mbr}"
        for c in gindex.cells
    )
    return zlib.crc32("|".join(parts).encode("utf-8"))


# ----------------------------------------------------------------------
# Replicas
# ----------------------------------------------------------------------
@dataclass
class Replica:
    """One stored copy of a block on one datanode.

    ``corrupt`` models a failed on-disk checksum for *this copy only*:
    the shared in-memory record list is intact, but any read routed to
    this replica would fail verification and must fail over.
    """

    node: int
    corrupt: bool = False


class StorageManager:
    """The namenode's view: datanode liveness plus placement policy.

    Replica lists and checksums live on the blocks themselves (they are
    file data and pickle with the workspace); the manager owns the node
    states and the round-robin placement cursor.
    """

    def __init__(
        self,
        num_nodes: int = DEFAULT_DATANODES,
        replication: int = DEFAULT_REPLICATION,
    ):
        if num_nodes <= 0:
            raise ValueError("a storage layer needs at least one datanode")
        if replication <= 0:
            raise ValueError("replication factor must be positive")
        self.num_nodes = num_nodes
        self.replication = min(replication, num_nodes)
        self.dead_nodes: set = set()
        self._cursor = 0

    # -- node state -----------------------------------------------------
    def is_alive(self, node: int) -> bool:
        return 0 <= node < self.num_nodes and node not in self.dead_nodes

    def alive_nodes(self) -> List[int]:
        return [n for n in range(self.num_nodes) if n not in self.dead_nodes]

    @property
    def target_replication(self) -> int:
        """The best replication currently achievable (nodes may be dead)."""
        return min(self.replication, len(self.alive_nodes()))

    # -- write path -----------------------------------------------------
    def seal_block(self, block: Any) -> None:
        """Checksum ``block`` and place its replicas (write path).

        Homogeneous point/rectangle blocks get a columnar payload here
        (when vectorized execution is on) and their checksum is computed
        over the columnar bytes, so replica verification and fsck cover
        exactly what the batch kernels read.

        Also used to *adopt* blocks from workspaces pickled before the
        storage layer existed; sealing is idempotent for placed blocks.
        """
        from repro.geometry import vectorized
        from repro.mapreduce.columnar import ColumnarPayload

        if getattr(block, "replicas", None):
            return
        payload = getattr(block, "columnar", None)
        if payload is None:
            payload = ColumnarPayload.from_records(block.records)
            if vectorized.enabled():
                block.columnar = payload
        if payload is not None:
            block.checksum = payload.checksum()
        else:
            block.checksum = checksum_records(block.records)
        local_index = block.metadata.get("local_index")
        if local_index is not None and "local_index_crc" not in block.metadata:
            block.metadata["local_index_crc"] = local_index_checksum(
                local_index
            )
        block.replicas = [Replica(node=n) for n in self._pick_nodes()]

    def seal_file(self, entry: Any) -> None:
        """Seal every block of a file plus its global-index checksum."""
        for block in entry.blocks:
            self.seal_block(block)
        gindex = entry.metadata.get("global_index")
        if gindex is not None and "global_index_crc" not in entry.metadata:
            entry.metadata["global_index_crc"] = global_index_checksum(gindex)

    def _pick_nodes(self) -> List[int]:
        """Round-robin placement over the alive datanodes."""
        alive = self.alive_nodes()
        want = min(self.replication, len(alive))
        chosen = [
            alive[(self._cursor + i) % len(alive)] for i in range(want)
        ]
        self._cursor = (self._cursor + 1) % max(1, len(alive))
        return chosen

    # -- read path ------------------------------------------------------
    def healthy_replicas(self, block: Any) -> List[Replica]:
        return [
            r
            for r in getattr(block, "replicas", None) or ()
            if self.is_alive(r.node) and not r.corrupt
        ]

    def verify_block(self, file_name: str, index: int, block: Any):
        """Route a read to the first healthy replica.

        Returns ``(failovers, corrupt_seen)``: how many replicas were
        skipped before a healthy one answered, and how many of those were
        skipped for a failed checksum (vs a dead node). Raises
        :class:`BlockUnavailableError` when no copy survives.
        """
        replicas = getattr(block, "replicas", None)
        if not replicas:
            # Legacy block (pre-storage workspace): adopt it on first read.
            self.seal_block(block)
            return 0, 0
        failovers = 0
        corrupt_seen = 0
        for replica in replicas:
            if not self.is_alive(replica.node):
                failovers += 1
                continue
            if replica.corrupt:
                failovers += 1
                corrupt_seen += 1
                continue
            return failovers, corrupt_seen
        raise BlockUnavailableError(
            f"block {index} of {file_name!r} has no healthy replica left "
            f"({len(replicas)} known: "
            f"{corrupt_seen} corrupt, {failovers - corrupt_seen} on dead "
            f"nodes); run `repro fsck --repair` or re-load the file"
        )

    # -- failure injection ----------------------------------------------
    def corrupt_replica(self, block: Any, replica: int = 0) -> bool:
        """Mark one stored copy of ``block`` as failing its checksum."""
        replicas = getattr(block, "replicas", None)
        if not replicas:
            self.seal_block(block)
            replicas = block.replicas
        if not 0 <= replica < len(replicas):
            return False
        replicas[replica].corrupt = True
        return True

    def lose_node(self, node: int, fs: Any, io_seconds: float = 0.0):
        """Kill datanode ``node`` and re-replicate what it held.

        Returns ``(repaired, repair_s)``: how many replicas the namenode
        re-created on surviving nodes, and the simulated seconds the
        repair traffic cost (read + write of every re-replicated record,
        charged at ``io_seconds`` per record). The last alive node can
        never be lost (the namespace would be gone); that call is a
        no-op, as is losing an unknown or already-dead node.
        """
        if not self.is_alive(node) or len(self.alive_nodes()) <= 1:
            return 0, 0.0
        self.dead_nodes.add(node)
        repaired = 0
        repair_s = 0.0
        for name in fs.list_files():
            entry = fs.get(name)
            for index, block in enumerate(entry.blocks):
                n, s = self._re_replicate(block, io_seconds)
                repaired += n
                repair_s += s
        return repaired, repair_s

    def _re_replicate(self, block: Any, io_seconds: float = 0.0):
        """Restore a block to target replication from its healthy copies.

        Dead-node and corrupt replicas are dropped from the replica map
        and fresh copies are written to alive nodes that don't already
        hold one. A block with *no* healthy replica cannot be repaired
        (the data is gone) and is left untouched for fsck to report.
        """
        healthy = self.healthy_replicas(block)
        if not healthy:
            return 0, 0.0
        block.replicas = list(healthy)
        held = {r.node for r in block.replicas}
        candidates = [n for n in self.alive_nodes() if n not in held]
        repaired = 0
        repair_s = 0.0
        while len(block.replicas) < self.target_replication and candidates:
            node = candidates.pop(0)
            block.replicas.append(Replica(node=node))
            repaired += 1
            # Repair traffic: read the source copy, write the new one.
            repair_s += 2.0 * io_seconds * len(block.records)
        return repaired, repair_s


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------
@dataclass
class FsckIssue:
    """One problem fsck found (and possibly repaired)."""

    file: str
    code: str
    message: str
    block: Optional[int] = None
    repaired: bool = False
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "file": self.file,
            "code": self.code,
            "message": self.message,
            "repaired": self.repaired,
        }
        if self.block is not None:
            out["block"] = self.block
        if self.data:
            out["data"] = dict(self.data)
        return out


@dataclass
class FsckReport:
    """The verdict of one fsck walk over the whole namespace."""

    files_checked: int = 0
    blocks_checked: int = 0
    repair: bool = False
    issues: List[FsckIssue] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """No outstanding (unrepaired) issues."""
        return not any(not i.repaired for i in self.issues)

    @property
    def repaired_count(self) -> int:
        return sum(1 for i in self.issues if i.repaired)

    def count(self, code: str) -> int:
        return sum(1 for i in self.issues if i.code == code)

    def summary(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for issue in self.issues:
            counts[issue.code] = counts.get(issue.code, 0) + 1
        return {
            "files_checked": self.files_checked,
            "blocks_checked": self.blocks_checked,
            "repair": self.repair,
            "issues": len(self.issues),
            "repaired": self.repaired_count,
            "healthy": self.healthy,
            "by_code": counts,
        }

    def to_dict(self) -> Dict[str, Any]:
        out = self.summary()
        out["findings"] = [i.to_dict() for i in self.issues]
        return out

    def render(self) -> str:
        lines = [
            f"fsck: {self.files_checked} file(s), "
            f"{self.blocks_checked} block(s) checked"
            + (" (repair mode)" if self.repair else "")
        ]
        for issue in self.issues:
            where = f" [block {issue.block}]" if issue.block is not None else ""
            fixed = " -- REPAIRED" if issue.repaired else ""
            lines.append(
                f"  {issue.code}: {issue.file}{where}: {issue.message}{fixed}"
            )
        if not self.issues:
            lines.append("  no issues: the namespace is healthy")
        elif self.healthy:
            lines.append(
                f"  {len(self.issues)} issue(s), all repaired; "
                f"the namespace is healthy"
            )
        else:
            outstanding = len(self.issues) - self.repaired_count
            lines.append(
                f"  {len(self.issues)} issue(s), "
                f"{self.repaired_count} repaired, {outstanding} outstanding; "
                f"the namespace is NOT healthy"
            )
        return "\n".join(lines)


def run_fsck(
    fs: Any,
    repair: bool = False,
    metrics: Any = None,
    checkpoint_dir: Any = None,
) -> FsckReport:
    """Walk every file, verify blocks and indexes, optionally repair.

    Checks, per block: payload checksum (recomputed from the records),
    replica health (dead nodes / corrupt copies), replication level, and
    the local-index checksum. Per file: the global-index checksum. With
    ``repair=True``: corrupt and dead replicas are dropped and fresh
    copies written (``REPLICAS_REPAIRED``), stale payload checksums are
    recomputed, and damaged local indexes are rebuilt from the block's
    surviving records. A block with no healthy replica at all is
    reported as lost — fsck cannot invent data.

    ``checkpoint_dir`` extends the walk to a crash-recovery journal
    (see :mod:`repro.mapreduce.checkpoint`): a corrupt manifest or wave
    file surfaces as a ``checkpoint-*`` issue, and with ``repair=True``
    corrupt wave files are deleted so resume re-executes those waves.
    """
    storage = fs.storage
    report = FsckReport(repair=repair)
    corrupt_detected = 0
    replicas_repaired = 0
    for name in fs.list_files():
        entry = fs.get(name)
        report.files_checked += 1
        for index, block in enumerate(entry.blocks):
            report.blocks_checked += 1
            if not getattr(block, "replicas", None):
                storage.seal_block(block)
                report.issues.append(
                    FsckIssue(
                        file=name,
                        block=index,
                        code="unplaced-block",
                        message="no replica map (pre-storage workspace); "
                        "sealed and placed",
                        repaired=True,
                    )
                )
                continue
            corrupt_detected += _check_block(
                name, index, block, storage, repair, report
            )
            replicas_repaired += _maybe_re_replicate(
                name, index, block, storage, repair, report
            )
            _check_local_index(name, index, block, repair, report)
        _check_global_index(name, entry, repair, report)
    if checkpoint_dir is not None:
        from repro.mapreduce.checkpoint import fsck_checkpoints

        for issue in fsck_checkpoints(checkpoint_dir, repair=repair):
            report.issues.append(
                FsckIssue(
                    file=issue.get("file", str(checkpoint_dir)),
                    code=issue["code"],
                    message=issue["message"],
                    repaired=issue.get("repaired", False),
                )
            )
    if metrics is not None:
        metrics.inc("FSCK_RUNS")
        if corrupt_detected:
            metrics.inc("BLOCKS_CORRUPT_DETECTED", corrupt_detected)
        if replicas_repaired:
            metrics.inc("REPLICAS_REPAIRED", replicas_repaired)
    return report


def _check_block(name, index, block, storage, repair, report) -> int:
    """Payload checksum + per-replica health for one block."""
    from repro.mapreduce.columnar import block_payload_checksum

    corrupt_seen = 0
    stored = getattr(block, "checksum", None)
    # Rebuilt fresh from the current records (columnar bytes for
    # homogeneous blocks, pickled records otherwise) so in-place
    # mutation is detected either way. Blocks sealed before the
    # columnar format may carry the legacy pickle CRC; accept it.
    actual = block_payload_checksum(block)
    if stored != actual and stored == checksum_records(block.records):
        actual = stored
    if stored != actual:
        if repair:
            block.checksum = actual
        report.issues.append(
            FsckIssue(
                file=name,
                block=index,
                code="checksum-mismatch",
                message=(
                    f"stored payload CRC {stored} != recomputed {actual}"
                ),
                repaired=repair,
                data={"stored": stored, "actual": actual},
            )
        )
    healthy = storage.healthy_replicas(block)
    for replica in block.replicas:
        if replica.corrupt:
            corrupt_seen += 1
            report.issues.append(
                FsckIssue(
                    file=name,
                    block=index,
                    code="corrupt-replica",
                    message=f"replica on node {replica.node} fails its "
                    "checksum",
                    repaired=repair and bool(healthy),
                    data={"node": replica.node},
                )
            )
        elif not storage.is_alive(replica.node):
            report.issues.append(
                FsckIssue(
                    file=name,
                    block=index,
                    code="missing-replica",
                    message=f"replica on dead node {replica.node}",
                    repaired=repair and bool(healthy),
                    data={"node": replica.node},
                )
            )
    if not healthy:
        report.issues.append(
            FsckIssue(
                file=name,
                block=index,
                code="lost-block",
                message="no healthy replica left; data is unrecoverable",
            )
        )
    return corrupt_seen


def _maybe_re_replicate(name, index, block, storage, repair, report) -> int:
    """Report (and with repair, fix) under-replication of one block."""
    healthy = storage.healthy_replicas(block)
    if not healthy:
        return 0
    target = storage.target_replication
    if len(healthy) >= target and len(healthy) == len(block.replicas):
        return 0
    repaired = 0
    if repair:
        repaired, _ = storage._re_replicate(block)
    if len(healthy) < target:
        report.issues.append(
            FsckIssue(
                file=name,
                block=index,
                code="under-replicated",
                message=(
                    f"{len(healthy)} healthy replica(s), target {target}"
                ),
                repaired=repair and repaired > 0,
                data={"healthy": len(healthy), "target": target},
            )
        )
    return repaired


def _check_local_index(name, index, block, repair, report) -> None:
    local_index = block.metadata.get("local_index")
    if local_index is None:
        return
    stored = block.metadata.get("local_index_crc")
    actual = local_index_checksum(local_index)
    if stored == actual:
        return
    repaired = False
    if repair:
        rebuilt = _rebuild_local_index(block.records)
        if rebuilt is not None:
            block.metadata["local_index"] = rebuilt
            block.metadata["local_index_crc"] = local_index_checksum(rebuilt)
            repaired = True
    report.issues.append(
        FsckIssue(
            file=name,
            block=index,
            code="local-index-corrupt",
            message=(
                f"local-index CRC {stored} != recomputed {actual}"
                + ("; rebuilt from records" if repaired else "")
            ),
            repaired=repaired,
            data={"stored": stored, "actual": actual},
        )
    )


def _rebuild_local_index(records):
    """Bulk-load a fresh local R-tree from a block's surviving records."""
    # Imported lazily: repro.index imports repro.mapreduce.
    from repro.index.partitioners.base import shape_mbr
    from repro.index.rtree import RTree, RTreeEntry

    try:
        return RTree(
            [RTreeEntry(mbr=shape_mbr(r), record=r) for r in records]
        )
    except Exception:
        return None


def _check_global_index(name, entry, repair, report) -> None:
    gindex = entry.metadata.get("global_index")
    if gindex is None:
        return
    stored = entry.metadata.get("global_index_crc")
    actual = global_index_checksum(gindex)
    if stored == actual:
        return
    if repair:
        entry.metadata["global_index_crc"] = actual
    report.issues.append(
        FsckIssue(
            file=name,
            code="global-index-corrupt",
            message=(
                f"global-index CRC {stored} != recomputed {actual}"
                + ("; checksum re-stamped" if repair else "")
            ),
            repaired=repair,
            data={"stored": stored, "actual": actual},
        )
    )
