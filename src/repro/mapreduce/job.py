"""Job configuration and task contexts."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.mapreduce.counters import Counters
from repro.mapreduce.fs import FileSystem
from repro.mapreduce.types import InputSplit

#: map(key, values, context) — one call per input split, mirroring the
#: papers' pseudo-code where the map function receives a whole partition
#: (``MAP(k: Rectangle, P: set of shapes)``). Record-at-a-time mappers are
#: trivially expressed by iterating ``values``.
MapFn = Callable[[Any, List[Any], "MapContext"], None]
#: combine/reduce(key, values, context)
ReduceFn = Callable[[Any, List[Any], "ReduceContext"], None]
#: splitter(fs, job) -> input splits (the SpatialFileSplitter hook)
SplitterFn = Callable[[FileSystem, "Job"], List[InputSplit]]
#: reader(split) -> (key, records) (the SpatialRecordReader hook)
ReaderFn = Callable[[InputSplit], Tuple[Any, List[Any]]]
#: partitioner(key, num_reducers) -> reducer index
PartitionerFn = Callable[[Any, int], int]
#: commit(context) — single-machine post-processing step
CommitFn = Callable[["CommitContext"], None]


def _stable_key_bytes(key: Any) -> bytes:
    """A canonical byte encoding of a shuffle key.

    Python's builtin ``hash`` is salted per interpreter run for strings
    (PYTHONHASHSEED), so using it to pick a reducer makes task placement —
    and therefore per-reducer stats and output order — nondeterministic
    across runs. This encoding is stable across runs and processes. A type
    tag keeps distinct types from colliding (``1`` vs ``"1"``).
    """
    if key is None:
        return b"n:"
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8", "surrogatepass")
    if isinstance(key, int):
        # bool is an int subclass and True == 1: they must share a bucket,
        # because reducers group keys by equality.
        return b"i:%d" % key
    if isinstance(key, float):
        if key.is_integer():  # 1.0 == 1: same bucket as the int
            return b"i:%d" % int(key)
        return b"f:" + repr(key).encode("ascii")
    if isinstance(key, (tuple, frozenset)):
        parts = key if isinstance(key, tuple) else sorted(key, key=repr)
        return b"t:" + b"|".join(_stable_key_bytes(part) for part in parts)
    # Fall back to repr; fine for dataclasses and value types, which is
    # what spatial jobs key by. (Objects with identity-based reprs should
    # supply their own partitioner.)
    return b"o:" + repr(key).encode("utf-8", "surrogatepass")


def default_partitioner(key: Any, num_reducers: int) -> int:
    """Hadoop's hash partitioner, on a run-stable hash (CRC-32)."""
    return zlib.crc32(_stable_key_bytes(key)) % num_reducers


#: Severity order for ``ctx.log``. Kept as a local table (mirroring
#: ``repro.observe.log.LEVELS``) so task bodies shipped to worker
#: processes never import the observability package.
_LOG_SEVERITY = {"debug": 10, "info": 20, "warn": 30, "error": 40}


@dataclass
class Job:
    """Configuration of one MapReduce job.

    Only ``input_file`` and ``map_fn`` are mandatory; a job without
    ``reduce_fn`` is map-only and its map output goes straight to the job
    output, as in Hadoop.

    ``config`` is free-form and reaches every task context, but a few
    keys are also read by the runtime's fault-tolerance layer and
    override the :class:`~repro.mapreduce.JobRunner` defaults per job:

    * ``max_attempts`` — attempts per task before the job fails.
    * ``task_timeout`` — per-attempt simulated-CPU budget in seconds.
    * ``speculative`` / ``slow_task_factor`` — straggler backups.
    * ``faults`` — a :class:`~repro.mapreduce.FaultPlan`, a spec string
      (see :meth:`FaultPlan.parse`), or ``None`` to disable injection
      for this job even when the runner carries a plan.
    """

    input_file: Any  # one file name, or a list of names for multi-input jobs
    map_fn: MapFn
    combine_fn: Optional[ReduceFn] = None
    reduce_fn: Optional[ReduceFn] = None
    commit_fn: Optional[CommitFn] = None
    num_reducers: int = 1
    partitioner: PartitionerFn = default_partitioner
    splitter: Optional[SplitterFn] = None
    reader: Optional[ReaderFn] = None
    config: Dict[str, Any] = field(default_factory=dict)
    name: str = "job"

    @property
    def input_files(self) -> List[str]:
        """The input file names, whether one or several were configured."""
        if isinstance(self.input_file, str):
            return [self.input_file]
        return list(self.input_file)


class _EmitterContext:
    """Shared plumbing of the map/reduce/commit contexts."""

    def __init__(self, job: Job, counters: Counters):
        self.job = job
        self.counters = counters
        self._emitted: List[Tuple[Any, Any]] = []
        self._output: List[Any] = []
        self._events: List[Dict[str, Any]] = []

    @property
    def config(self) -> Dict[str, Any]:
        return self.job.config

    def emit(self, key: Any, value: Any) -> None:
        """Emit an intermediate key-value pair to the next stage."""
        self._emitted.append((key, value))

    def trace_event(self, name: str, **attrs: Any) -> None:
        """Record a trace event from inside a task.

        Tasks may run in worker processes that cannot reach the driver's
        tracer, so events are collected locally as plain dicts, shipped
        back with the task result, and attached by the driver under the
        task's span — in split/bucket order, so the merged trace never
        depends on the execution backend. Cheap no-matter-what: when
        tracing is disabled the driver simply drops them.
        """
        self._events.append({"name": name, "attrs": attrs})

    def log(self, level: str, event: str, **attrs: Any) -> None:
        """Emit a structured event-log record from inside a task.

        Like :meth:`trace_event`, records are collected as plain dicts
        and shipped back with the task result; the driver folds them
        into its :class:`~repro.observe.log.EventLog` in split/bucket
        order, scoped to this task. The driver's log threshold rides in
        ``job.config["log_level"]`` (numeric), so a disabled or
        filtered-out log costs two dict lookups and nothing else —
        ``attrs`` must stay deterministic (record counts, not clocks)
        because shipped records are part of the normalized log.
        """
        threshold = self.job.config.get("log_level")
        if threshold is None or _LOG_SEVERITY.get(level, 0) < threshold:
            return
        self._events.append({"name": event, "attrs": attrs, "log": level})

    def write_output(self, record: Any) -> None:
        """Write a record directly to the final job output.

        This models the *early flush* of the papers' pruning steps: parts of
        the answer that need no further merging bypass the shuffle entirely.
        """
        self._output.append(record)


class MapContext(_EmitterContext):
    """Context passed to map functions."""

    def __init__(self, job: Job, counters: Counters, split: InputSplit):
        super().__init__(job, counters)
        self.split = split

    @property
    def cell(self) -> Optional[Any]:
        """Partition MBR for spatially partitioned input, else None."""
        return self.split.cell


class ReduceContext(_EmitterContext):
    """Context passed to combine and reduce functions."""

    def __init__(self, job: Job, counters: Counters, task_index: int):
        super().__init__(job, counters)
        self.task_index = task_index


class CommitContext(_EmitterContext):
    """Context passed to the job-commit function.

    The commit step runs once, on "the master", after all reducers finish.
    It can read everything written so far (``current_output``) and replace
    it (``replace_output``) — this is how multi-phase merges such as index
    building finalise their result.
    """

    def __init__(self, job: Job, counters: Counters, output: List[Any]):
        super().__init__(job, counters)
        self._current = output

    @property
    def current_output(self) -> List[Any]:
        return self._current

    def replace_output(self, records: Iterable[Any]) -> None:
        self._current[:] = list(records)
