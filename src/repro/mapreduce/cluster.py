"""Cluster cost model: turns per-task work into a simulated makespan.

The simulator measures each task's actual CPU work (``time.process_time``
inside the task, so the measurement is identical whether the executor runs
tasks serially or across a real worker-process pool). The
:class:`ClusterModel` then *schedules* those task durations onto
``num_nodes`` identical nodes (greedy longest-processing-time list
scheduling, the same approximation Hadoop's scheduler achieves in practice)
and charges the fixed per-job overhead the papers emphasise when counting
MapReduce rounds. The result is a deterministic, hardware-independent
estimate of cluster wall-clock that preserves the evaluation's comparisons:
fewer blocks read -> fewer map tasks -> smaller makespan; single-reducer
merges serialise; extra rounds pay extra overhead. Real parallelism
(``JobRunner(workers=N)``) changes how fast the simulator itself finishes,
never the simulated makespan it reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class TaskAttempt:
    """One attempt at running a task (fault-tolerance bookkeeping).

    ``outcome`` is one of ``success``, ``crash``, ``timeout``,
    ``corrupt``, ``worker-lost`` or ``speculative-lost``. ``backoff_s``
    is the simulated wait charged before this attempt started (zero for
    first attempts); ``speculative`` marks backup attempts launched for
    stragglers.
    """

    attempt: int
    outcome: str
    seconds: float = 0.0
    backoff_s: float = 0.0
    speculative: bool = False
    error: str = ""


@dataclass
class TaskStats:
    """Work attributed to one map or reduce task.

    ``seconds`` is the CPU charge of the *winning* attempt (the one whose
    output the job used). ``attempts`` records the full attempt history
    when anything interesting happened — retries, timeouts, speculation —
    and stays empty for the common clean single-attempt case, so
    histories pickled before fault tolerance existed keep loading.
    """

    task_id: str
    records_in: int = 0
    records_out: int = 0
    seconds: float = 0.0
    attempts: List[TaskAttempt] = field(default_factory=list)

    @property
    def num_attempts(self) -> int:
        return max(1, len(self.attempts))

    @property
    def was_retried(self) -> bool:
        """Did a non-speculative re-execution happen (i.e. a failure)?"""
        return sum(1 for a in self.attempts if not a.speculative) > 1

    def effective_seconds(self, io_seconds: float = 0.0) -> float:
        """Serial duration of this task on its original node.

        Failed attempts, their backoff waits, and the winning (or
        speculatively-lost) primary attempt all run back to back on one
        node, so they sum; speculative backups run *elsewhere* and are
        charged separately by the wave scheduler. ``io_seconds`` is the
        per-attempt I/O charge (re-reads happen on every retry).
        """
        attempts = [a for a in self.attempts if not a.speculative]
        if not attempts:
            return self.seconds + io_seconds
        return sum(a.backoff_s + a.seconds + io_seconds for a in attempts)

    def backup_seconds(self, io_seconds: float = 0.0) -> List[float]:
        """Durations of speculative backup attempts (usually 0 or 1)."""
        return [
            a.seconds + io_seconds for a in self.attempts if a.speculative
        ]


@dataclass
class ClusterModel:
    """Parameters of the simulated cluster.

    ``job_overhead_s`` models JVM/job startup (tens of seconds on real
    Hadoop; scaled here to stay proportionate to simulated task times).
    ``per_record_io_s`` adds a charge per record read from or written to the
    file system, modelling disk/network I/O that pure-CPU timing misses.
    ``per_shuffle_record_s`` charges the map->reduce network transfer.

    ``slow_nodes`` / ``slow_node_factor`` make the cluster heterogeneous:
    that many nodes run every task ``slow_node_factor``× slower. This is
    the regime where speculative execution pays off — a backup launched on
    a healthy node beats the straggling original. ``speculation_trigger``
    is the fraction of a wave that must finish before backups may start
    (Hadoop's "slow start" rule). The defaults (0 slow nodes) keep the
    model homogeneous and the scheduling bit-identical to plain LPT.
    """

    num_nodes: int = 25
    job_overhead_s: float = 0.5
    per_record_io_s: float = 1e-5
    per_shuffle_record_s: float = 2e-5
    slow_nodes: int = 0
    slow_node_factor: float = 1.0
    speculation_trigger: float = 0.25

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("a cluster needs at least one node")
        if self.slow_nodes < 0 or self.slow_nodes >= self.num_nodes:
            self.slow_nodes = max(0, min(self.slow_nodes, self.num_nodes - 1))
        if self.slow_node_factor < 1.0:
            raise ValueError("slow_node_factor must be >= 1")

    def schedule(self, task_seconds: Sequence[float]) -> float:
        """Makespan of greedy LPT scheduling on ``num_nodes`` machines."""
        if not task_seconds:
            return 0.0
        loads = [0.0] * min(self.num_nodes, len(task_seconds))
        heapq.heapify(loads)
        for duration in sorted(task_seconds, reverse=True):
            lightest = heapq.heappop(loads)
            heapq.heappush(loads, lightest + duration)
        return max(loads)

    def job_cost(
        self,
        map_tasks: Sequence[TaskStats],
        reduce_tasks: Sequence[TaskStats],
        shuffle_records: int = 0,
    ) -> dict:
        """Per-component simulated cost of one MapReduce job.

        Returns ``{"overhead", "map", "shuffle", "reduce", "total"}`` in
        seconds. The map wave and the reduce wave are serialised
        (reducers cannot finish before all maps complete), shuffle cost
        is charged between them, and the fixed job overhead is added
        once; ``total`` is their sum. The breakdown is what the job
        history and trace spans report, so skew diagnoses can say *which*
        component dominated.
        """
        cost = {
            "overhead": self.job_overhead_s,
            "map": self.wave_span(map_tasks),
            "shuffle": self.per_shuffle_record_s * shuffle_records,
            "reduce": self.wave_span(reduce_tasks),
        }
        cost["total"] = sum(cost.values())
        return cost

    def wave_span(self, tasks: Sequence[TaskStats]) -> float:
        """Simulated duration of one wave, fault history included.

        Each task's *effective* duration folds in retries and backoff
        (:meth:`TaskStats.effective_seconds`). On a homogeneous cluster
        (``slow_nodes == 0``) this reduces to plain LPT scheduling —
        bit-identical to the pre-fault-tolerance model when no task was
        retried — with speculative backups charged as extra parallel
        load (on identical nodes a backup can never win, only cost).
        On a heterogeneous cluster the wave is replayed task by task:
        tasks are assigned to the earliest-available node in wave order,
        slow nodes stretch their durations, and tasks with a recorded
        backup attempt get it launched on a healthy node once the
        speculation trigger fires; the task finishes when either copy
        does.
        """
        io = self.per_record_io_s

        def task_io(t: TaskStats) -> float:
            return io * (t.records_in + t.records_out)

        durations = [t.effective_seconds(task_io(t)) for t in tasks]
        backups = {
            i: min(secs)
            for i, t in enumerate(tasks)
            if (secs := t.backup_seconds(task_io(t)))
        }
        if self.slow_nodes <= 0:
            return self.schedule(durations + sorted(backups.values()))
        return self._heterogeneous_span(durations, backups)

    def _heterogeneous_span(
        self, durations: List[float], backups: dict
    ) -> float:
        """LPT replay on a cluster where some nodes are slow.

        Tasks are dispatched longest-first to the earliest-available
        node, with availability ties broken toward *slow* nodes (they
        carry the lowest indices). At time zero every node is idle, so
        the wave's longest tasks start on the slow nodes — the
        straggler scenario speculative execution exists for (a long
        task degraded further by a slow machine, cf. LATE). After
        ``speculation_trigger`` of the wave has finished, every task
        with a recorded backup attempt gets the backup started on a
        nominal-speed node; the task completes at the earlier of the
        two finish times. The backup's extra occupancy is deliberately
        not fed back into node availability — by the time backups
        launch the wave tail is draining and idle healthy nodes are
        plentiful, which is exactly when Hadoop schedules them.
        """
        if not durations:
            return 0.0
        num_nodes = min(self.num_nodes, len(durations))
        # Slow nodes take the lowest indices so they win heap ties.
        num_slow = min(self.slow_nodes, num_nodes - 1)
        ready = [(0.0, node) for node in range(num_nodes)]
        heapq.heapify(ready)
        finishes = [0.0] * len(durations)
        order = sorted(range(len(durations)),
                       key=lambda i: durations[i], reverse=True)
        for index in order:
            available, node = heapq.heappop(ready)
            factor = self.slow_node_factor if node < num_slow else 1.0
            finish = available + durations[index] * factor
            heapq.heappush(ready, (finish, node))
            finishes[index] = finish
        trigger_rank = max(0, min(len(finishes) - 1,
                                  int(len(finishes) * self.speculation_trigger)))
        trigger_time = sorted(finishes)[trigger_rank]
        for index, backup in backups.items():
            finishes[index] = min(finishes[index], trigger_time + backup)
        return max(finishes)

    def job_makespan(
        self,
        map_tasks: Sequence[TaskStats],
        reduce_tasks: Sequence[TaskStats],
        shuffle_records: int = 0,
    ) -> float:
        """Simulated wall-clock of one MapReduce job (see :meth:`job_cost`)."""
        return self.job_cost(map_tasks, reduce_tasks, shuffle_records)["total"]

    def serving_slots(self, tasks_per_query: int = 4) -> int:
        """Concurrent queries this cluster can admit without queueing.

        A query occupies roughly ``tasks_per_query`` node-slots while a
        wave of it runs, so the admission controller in
        :mod:`repro.serve` caps in-flight work at
        ``num_nodes // tasks_per_query`` (at least one). This is the
        same capacity notion Hadoop's scheduler pools express as "slots
        per job", collapsed to a single bound for the simulated service.
        """
        if tasks_per_query <= 0:
            raise ValueError("tasks_per_query must be positive")
        return max(1, self.num_nodes // tasks_per_query)
