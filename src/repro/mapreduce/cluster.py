"""Cluster cost model: turns per-task work into a simulated makespan.

The simulator measures each task's actual CPU work (``time.process_time``
inside the task, so the measurement is identical whether the executor runs
tasks serially or across a real worker-process pool). The
:class:`ClusterModel` then *schedules* those task durations onto
``num_nodes`` identical nodes (greedy longest-processing-time list
scheduling, the same approximation Hadoop's scheduler achieves in practice)
and charges the fixed per-job overhead the papers emphasise when counting
MapReduce rounds. The result is a deterministic, hardware-independent
estimate of cluster wall-clock that preserves the evaluation's comparisons:
fewer blocks read -> fewer map tasks -> smaller makespan; single-reducer
merges serialise; extra rounds pay extra overhead. Real parallelism
(``JobRunner(workers=N)``) changes how fast the simulator itself finishes,
never the simulated makespan it reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class TaskStats:
    """Work attributed to one map or reduce task."""

    task_id: str
    records_in: int = 0
    records_out: int = 0
    seconds: float = 0.0


@dataclass
class ClusterModel:
    """Parameters of the simulated cluster.

    ``job_overhead_s`` models JVM/job startup (tens of seconds on real
    Hadoop; scaled here to stay proportionate to simulated task times).
    ``per_record_io_s`` adds a charge per record read from or written to the
    file system, modelling disk/network I/O that pure-CPU timing misses.
    ``per_shuffle_record_s`` charges the map->reduce network transfer.
    """

    num_nodes: int = 25
    job_overhead_s: float = 0.5
    per_record_io_s: float = 1e-5
    per_shuffle_record_s: float = 2e-5

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("a cluster needs at least one node")

    def schedule(self, task_seconds: Sequence[float]) -> float:
        """Makespan of greedy LPT scheduling on ``num_nodes`` machines."""
        if not task_seconds:
            return 0.0
        loads = [0.0] * min(self.num_nodes, len(task_seconds))
        heapq.heapify(loads)
        for duration in sorted(task_seconds, reverse=True):
            lightest = heapq.heappop(loads)
            heapq.heappush(loads, lightest + duration)
        return max(loads)

    def job_cost(
        self,
        map_tasks: Sequence[TaskStats],
        reduce_tasks: Sequence[TaskStats],
        shuffle_records: int = 0,
    ) -> dict:
        """Per-component simulated cost of one MapReduce job.

        Returns ``{"overhead", "map", "shuffle", "reduce", "total"}`` in
        seconds. The map wave and the reduce wave are serialised
        (reducers cannot finish before all maps complete), shuffle cost
        is charged between them, and the fixed job overhead is added
        once; ``total`` is their sum. The breakdown is what the job
        history and trace spans report, so skew diagnoses can say *which*
        component dominated.
        """
        map_times = [
            t.seconds + self.per_record_io_s * (t.records_in + t.records_out)
            for t in map_tasks
        ]
        reduce_times = [
            t.seconds + self.per_record_io_s * (t.records_in + t.records_out)
            for t in reduce_tasks
        ]
        cost = {
            "overhead": self.job_overhead_s,
            "map": self.schedule(map_times),
            "shuffle": self.per_shuffle_record_s * shuffle_records,
            "reduce": self.schedule(reduce_times),
        }
        cost["total"] = sum(cost.values())
        return cost

    def job_makespan(
        self,
        map_tasks: Sequence[TaskStats],
        reduce_tasks: Sequence[TaskStats],
        shuffle_records: int = 0,
    ) -> float:
        """Simulated wall-clock of one MapReduce job (see :meth:`job_cost`)."""
        return self.job_cost(map_tasks, reduce_tasks, shuffle_records)["total"]
