"""Multi-tenant query service over a shared SpatialHadoop workspace.

ROADMAP item 1: a long-lived service layer in front of
:class:`~repro.core.system.SpatialHadoop` that accepts concurrent query
sessions from named tenants, bounds in-flight work against the simulated
cluster's capacity, and degrades predictably instead of collapsing.

The moving parts, one module each:

* :mod:`repro.serve.protocol`  — requests, responses, typed rejections
  (:class:`Overloaded`), tenant quotas and the line-oriented wire format;
* :mod:`repro.serve.scheduler` — admission control and the weighted-fair
  queueing dispatcher with per-tenant quotas;
* :mod:`repro.serve.breaker`   — the per-dataset circuit breaker
  (closed → open → half-open);
* :mod:`repro.serve.cache`     — the LRU result cache keyed on
  :meth:`~repro.observe.plan.PlanNode.normalized`, invalidated by file
  version;
* :mod:`repro.serve.service`   — :class:`QueryService`, the event loop
  tying them together on a deterministic virtual clock.

Like the rest of the simulator the service is single-process and
deterministic: "concurrency" is modelled in virtual time (the same
clock the :class:`~repro.mapreduce.cluster.ClusterModel` charges), so a
chaos run replays bit-identically and latency percentiles are exact.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.protocol import (
    OUTCOMES,
    BadRequest,
    DatasetUnavailable,
    Overloaded,
    Request,
    Response,
    ServeError,
    TenantQuota,
    parse_quota_spec,
)
from repro.serve.scheduler import FairScheduler
from repro.serve.service import QueryService, ServiceConfig

__all__ = [
    "BadRequest",
    "CircuitBreaker",
    "DatasetUnavailable",
    "FairScheduler",
    "OUTCOMES",
    "Overloaded",
    "QueryService",
    "Request",
    "Response",
    "ResultCache",
    "ServeError",
    "ServiceConfig",
    "TenantQuota",
    "parse_quota_spec",
]
