"""The long-lived multi-tenant query service.

:class:`QueryService` fronts one shared :class:`~repro.core.system.
SpatialHadoop` workspace and runs admitted requests on a deterministic
*virtual* clock — the same simulated-seconds currency the
:class:`~repro.mapreduce.cluster.ClusterModel` charges. Concurrency is
modelled, not threaded: the service owns ``max_inflight`` virtual
execution slots (defaulting to :meth:`ClusterModel.serving_slots`), each
dispatched request occupies a slot from its virtual start to
``start + cost`` where ``cost`` is the real query's simulated makespan,
and the dispatcher (:class:`~repro.serve.scheduler.FairScheduler`)
always advances the earliest-free slot. Latency percentiles, queue
waits, deadline trips and breaker transitions are therefore exact and
replay bit-identically — which is what lets the chaos suite assert
golden shed/degraded/served counts.

Request life cycle::

    submit() ── admission ──┬── queue full ──> Overloaded (shed)
                            └── enqueued
    drain()  ── WFQ pick ───┬── deadline already blown ──> deadline
                            ├── breaker open ─┬─ range/count/knn ──> degraded
                            │                 └─ else ──> error (typed)
                            ├── cache hit (versions valid) ──> served
                            └── execute ──┬── ok ──> served (+cached)
                                          ├── DeadlineExceeded ──> deadline
                                          └── failure ──> breaker++ ──>
                                              degraded fallback or error

Per-request deadlines propagate into the PR 9 cooperative-cancellation
path: the remaining budget (deadline minus virtual queue wait) is
installed as a :class:`~repro.mapreduce.checkpoint.CancellationToken`
on the runner, so a timed-out query stops at the next task boundary,
releases its slot, and ``hangdriver`` faults charge the same clock —
deadline chaos is deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.core.splitter import global_index_of
from repro.mapreduce.checkpoint import (
    CancellationToken,
    DeadlineExceeded,
    RunInterrupted,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.protocol import (
    OUTCOME_DEADLINE,
    OUTCOME_DEGRADED,
    OUTCOME_ERROR,
    OUTCOME_OVERLOADED,
    OUTCOME_SERVED,
    BadRequest,
    DatasetUnavailable,
    Overloaded,
    Request,
    Response,
    TenantQuota,
    parse_request_line,
    sanitize_tenant,
)
from repro.serve.scheduler import FairScheduler

#: Operations with a metadata-only degraded fallback (see _approximate).
DEGRADABLE_OPS = ("range", "count", "knn")

#: Latency histogram boundaries (simulated seconds).
LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0)


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (per-tenant limits live in TenantQuota).

    ``max_inflight`` bounds globally concurrent requests; ``None``
    derives it from the cluster via :meth:`ClusterModel.serving_slots`
    with ``tasks_per_query``. ``cache_hit_cost_s`` / ``degraded_cost_s``
    are the simulated charges of answers that run no MapReduce job —
    small but non-zero, so cached and degraded traffic still occupies
    the admission pipeline for a moment, as it would in life.
    """

    max_inflight: Optional[int] = None
    tasks_per_query: int = 4
    cache_capacity: int = 128
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 120.0
    cache_hit_cost_s: float = 0.001
    degraded_cost_s: float = 0.01
    error_cost_s: float = 0.001


class QueryService:
    """A deterministic multi-tenant front end over one workspace."""

    def __init__(
        self,
        sh: Any,
        config: Optional[ServiceConfig] = None,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
    ):
        self.sh = sh
        self.config = config or ServiceConfig()
        self.max_inflight = (
            self.config.max_inflight
            if self.config.max_inflight is not None
            else sh.cluster.serving_slots(self.config.tasks_per_query)
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.scheduler = FairScheduler(
            quotas=quotas, default_quota=default_quota
        )
        self.cache = ResultCache(capacity=self.config.cache_capacity)
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.now = 0.0
        #: Virtual free times of the execution slots.
        self._slots: List[float] = [0.0] * self.max_inflight
        heapq.heapify(self._slots)
        self._next_id = 1
        self._burst_fired: set = set()
        self._responses: List[Response] = []
        self._shutdown = False
        self._shutdown_requested = False
        self._log(
            "info", "service-started",
            max_inflight=self.max_inflight,
            cache_capacity=self.config.cache_capacity,
        )

    # ------------------------------------------------------------------
    # Submission / admission
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        text: str,
        deadline_s: Optional[float] = None,
        synthetic: bool = False,
    ) -> Optional[Response]:
        """Admit one request; returns a terminal Response if it was shed.

        ``None`` means the request is queued and will be answered by the
        next :meth:`drain`. A shed request gets an immediate
        ``overloaded`` response (also recorded in :meth:`responses`), so
        no submission is ever lost — every one ends in exactly one
        terminal outcome.
        """
        if self._shutdown:
            raise RuntimeError("query service is shut down")
        request = Request(
            request_id=self._next_id,
            tenant=tenant,
            text=text,
            deadline_s=deadline_s,
            arrival_s=self.now,
            synthetic=synthetic,
        )
        self._next_id += 1
        self._count(tenant, "requests")
        shed = self._admit(request)
        if shed is None and not synthetic:
            self._fire_burst(request)
        return shed

    def _admit(self, request: Request) -> Optional[Response]:
        try:
            self.scheduler.enqueue(request, self.now)
        except Overloaded as exc:
            response = Response(
                request_id=request.request_id,
                tenant=request.tenant,
                query=request.text,
                outcome=OUTCOME_OVERLOADED,
                arrival_s=request.arrival_s,
                start_s=request.arrival_s,
                finish_s=request.arrival_s,
                retry_after_s=exc.retry_after_s,
                error=str(exc),
                error_type="Overloaded",
                synthetic=request.synthetic,
            )
            self._finish(response)
            return response
        self._log(
            "debug", "request-admitted", volatile=True,
            tenant=request.tenant, request=request.request_id,
        )
        return None

    def _fire_burst(self, request: Request) -> None:
        """Apply a ``burst:<tenant>:<n>`` service fault, at most once."""
        plan = getattr(self.sh.runner, "faults", None)
        if plan is None or request.tenant in self._burst_fired:
            return
        count = plan.burst_for(request.tenant)
        if count <= 0:
            return
        self._burst_fired.add(request.tenant)
        self._log(
            "warn", "burst-injected",
            tenant=request.tenant, extra_requests=count,
        )
        for _ in range(count):
            self.submit(
                request.tenant,
                request.text,
                deadline_s=request.deadline_s,
                synthetic=True,
            )

    def query(
        self, tenant: str, text: str, deadline_s: Optional[float] = None
    ) -> Response:
        """Submit one request and run it to completion.

        Raises the typed :class:`Overloaded` when admission sheds it;
        otherwise returns the terminal response (which may still be a
        ``deadline`` or ``error`` outcome).
        """
        wanted = self._next_id
        shed = self.submit(tenant, text, deadline_s=deadline_s)
        if shed is not None:
            raise Overloaded(
                tenant,
                retry_after_s=shed.retry_after_s or 0.0,
                reason="queue full",
            )
        for response in self.drain():
            if response.request_id == wanted:
                return response
        raise RuntimeError(
            f"request {wanted} vanished from the drain loop"
        )  # pragma: no cover - no-lost-requests invariant

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def drain(self) -> List[Response]:
        """Run every queued request to completion; returns new responses."""
        completed: List[Response] = []
        while self.scheduler.has_queued():
            start = max(self.now, self._slots[0])
            tenant = self.scheduler.pick(start)
            if tenant is None:
                unblock = self.scheduler.next_event_after(start)
                if unblock is None:
                    # Cannot happen while invariants hold: a queued
                    # tenant is blocked only by inflight work or window
                    # spend, both of which schedule an unblock event.
                    raise RuntimeError(
                        "scheduler stalled with queued requests"
                    )  # pragma: no cover
                self.now = unblock
                continue
            request = tenant.queue.popleft()
            heapq.heappop(self._slots)
            self.now = start
            response, cost = self._execute(request, start)
            finish = start + cost
            heapq.heappush(self._slots, finish)
            tenant.on_dispatched(start, cost, finish)
            self.scheduler.note_completed(cost)
            response.start_s = start
            response.finish_s = finish
            response.latency_s = finish - request.arrival_s
            response.cost_s = cost
            self._finish(response)
            completed.append(response)
        self._gauges()
        self._scrape("serve-drain")
        return completed

    def process_script(self, lines: Iterable[str]) -> List[Response]:
        """Replay a request script: admit every line, then drain.

        All requests in the script arrive in one burst (same virtual
        instant), which is the adversarial case admission control
        exists for. Returns the responses created by *this* call,
        sorted by request id.
        """
        before = len(self._responses)
        for line in lines:
            try:
                record = parse_request_line(line)
            except BadRequest as exc:
                response = Response(
                    request_id=self._next_id,
                    tenant="unknown",
                    query=line.strip(),
                    outcome=OUTCOME_ERROR,
                    error=str(exc),
                    error_type="BadRequest",
                )
                self._next_id += 1
                self._finish(response)
                continue
            if record is None:
                continue
            self.submit(
                record["tenant"],
                record["query"],
                deadline_s=record.get("deadline_s"),
            )
        self.drain()
        return sorted(
            self._responses[before:], key=lambda r: r.request_id
        )

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    def _execute(self, request: Request, start: float) -> tuple:
        """Run one dispatched request; returns (response, virtual cost)."""
        from repro.observe import explain

        cfg = self.config
        base = dict(
            request_id=request.request_id,
            tenant=request.tenant,
            query=request.text,
            arrival_s=request.arrival_s,
            synthetic=request.synthetic,
        )
        plan_faults = getattr(self.sh.runner, "faults", None)
        slow_extra = (
            plan_faults.slowdown_for(request.tenant) if plan_faults else 0.0
        )

        waited = start - request.arrival_s
        if request.deadline_s is not None and waited >= request.deadline_s:
            self._log(
                "warn", "request-deadline", tenant=request.tenant,
                request=request.request_id, waited_s=round(waited, 6),
                phase="queue",
            )
            return (
                Response(
                    outcome=OUTCOME_DEADLINE,
                    error=f"deadline of {request.deadline_s:g}s blown after "
                    f"{waited:.3f}s of queueing",
                    error_type="DeadlineExceeded",
                    **base,
                ),
                0.0,
            )

        try:
            query = explain.parse_query(request.text)
            for name in query.files:
                if not self.sh.fs.exists(name):
                    raise FileNotFoundError(f"no such file: {name!r}")
        except (explain.ExplainQueryError, FileNotFoundError) as exc:
            return (
                Response(
                    outcome=OUTCOME_ERROR,
                    error=str(exc),
                    error_type=type(exc).__name__,
                    **base,
                ),
                cfg.error_cost_s,
            )

        tripped = [
            name
            for name in query.files
            if not self._breaker(name).allow(start)
        ]
        if tripped:
            return self._degrade_or_fail(query, tripped[0], base, slow_extra)

        plan = explain.build_plan(self.sh, query)
        key = self.cache.key_for(plan)
        cached = self.cache.get(key, self.sh.fs)
        if cached is not None:
            self._count(request.tenant, "cache_hits")
            return (
                Response(
                    outcome=OUTCOME_SERVED,
                    answer=self._summarize(cached.answer),
                    rows=_rows_of(cached.answer),
                    cache_hit=True,
                    result=cached,
                    **base,
                ),
                cfg.cache_hit_cost_s + slow_extra,
            )

        remaining = (
            request.deadline_s - waited
            if request.deadline_s is not None
            else None
        )
        previous_token = getattr(self.sh.runner, "cancellation", None)
        token = None
        if remaining is not None:
            token = CancellationToken(deadline_s=remaining)
            self.sh.runner.set_cancellation(token)
        try:
            result = explain.execute_query(self.sh, query)
        except DeadlineExceeded as exc:
            self._log(
                "warn", "request-deadline", tenant=request.tenant,
                request=request.request_id, phase="execute",
            )
            return (
                Response(
                    outcome=OUTCOME_DEADLINE,
                    error=str(exc) or "deadline exceeded mid-query",
                    error_type="DeadlineExceeded",
                    **base,
                ),
                # The query occupied its slot right up to the deadline.
                (remaining or 0.0) + slow_extra,
            )
        except RunInterrupted:
            raise  # cancellation / driver crash outranks the service
        except Exception as exc:
            for name in query.files:
                opened = self._breaker(name).record_failure(start)
                if opened:
                    self._count(request.tenant, "breaker_trips")
                    self._log(
                        "error", "breaker-open", dataset=name,
                        failures=self._breaker(name).consecutive_failures,
                        error=type(exc).__name__,
                    )
            self._log(
                "warn", "request-failed", tenant=request.tenant,
                request=request.request_id, error=type(exc).__name__,
            )
            return self._degrade_or_fail(
                query, query.files[0], base, slow_extra, cause=exc
            )
        finally:
            if token is not None:
                self.sh.runner.set_cancellation(previous_token)

        for name in query.files:
            if self._breaker(name).record_success(start):
                self._log("info", "breaker-closed", dataset=name)
        self.cache.put(key, list(query.files), self.sh.fs, result)
        return (
            Response(
                outcome=OUTCOME_SERVED,
                answer=self._summarize(result.answer),
                rows=_rows_of(result.answer),
                result=result,
                **base,
            ),
            result.makespan + slow_extra,
        )

    def _degrade_or_fail(
        self,
        query: Any,
        dataset: str,
        base: Dict[str, Any],
        slow_extra: float,
        cause: Optional[Exception] = None,
    ) -> tuple:
        """Metadata-only approximate answer, or a typed failure."""
        if query.op in DEGRADABLE_OPS:
            estimate = self._approximate(query)
            self._log(
                "warn", "request-degraded", tenant=base["tenant"],
                request=base["request_id"], dataset=dataset,
            )
            return (
                Response(
                    outcome=OUTCOME_DEGRADED,
                    answer=estimate,
                    rows=estimate,
                    degraded=True,
                    error=str(cause) if cause else "",
                    error_type=type(cause).__name__ if cause else "",
                    **base,
                ),
                self.config.degraded_cost_s + slow_extra,
            )
        exc = (
            cause
            if cause is not None
            else DatasetUnavailable(dataset, query.op)
        )
        return (
            Response(
                outcome=OUTCOME_ERROR,
                error=str(exc),
                error_type=type(exc).__name__,
                **base,
            ),
            self.config.error_cost_s + slow_extra,
        )

    def _approximate(self, query: Any) -> int:
        """A ``range_count``-style estimate from global-index metadata.

        Reads zero blocks — only the namenode-side partition catalogue —
        so it works while the dataset's storage is broken. Uniform
        density inside each partition: a window covering half a cell's
        MBR is charged half its records.
        """
        gindex = global_index_of(self.sh.fs, query.file)
        if gindex is None:
            # Heap file: no partition catalogue; the only metadata-known
            # bound is the record count.
            total = self.sh.fs.get(query.file).num_records
            return min(query.k, total) if query.op == "knn" else total
        if query.op == "knn":
            return min(query.k, gindex.total_records)
        estimate = 0.0
        for cell in gindex.overlapping(query.window):
            overlap = cell.mbr.intersection(query.window)
            if overlap is None:
                continue
            fraction = (
                overlap.area / cell.mbr.area if cell.mbr.area > 0 else 1.0
            )
            estimate += cell.num_records * min(1.0, fraction)
        return int(round(estimate))

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        """Ask the service to stop after draining (signal-handler safe)."""
        self._shutdown_requested = True

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown_requested

    def shutdown(self) -> Dict[str, Any]:
        """Drain queued requests, release pools, return the summary.

        Idempotent: a second call is a no-op returning the same summary.
        The runner's pools are closed too (:meth:`JobRunner.close` and
        :meth:`ParallelExecutor.close` both tolerate double invocation —
        the service context is exactly where double-close happens, e.g.
        a SIGTERM arriving while a CLI ``finally`` block also closes).
        """
        if self._shutdown:
            return self.summary()
        self.drain()
        self._shutdown = True
        self.sh.runner.set_cancellation(None)
        self.sh.runner.close()
        self._log("info", "service-shutdown", **{
            k: v for k, v in self.summary().items()
            if isinstance(v, (int, float))
        })
        self._scrape("serve-shutdown")
        return self.summary()

    # ------------------------------------------------------------------
    # Bookkeeping, metrics, summaries
    # ------------------------------------------------------------------
    def responses(self) -> List[Response]:
        """Every terminal response so far, in request-id order."""
        return sorted(self._responses, key=lambda r: r.request_id)

    def _breaker(self, name: str) -> CircuitBreaker:
        breaker = self.breakers.get(name)
        if breaker is None:
            breaker = self.breakers[name] = CircuitBreaker(
                name,
                failure_threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
            )
        return breaker

    def _finish(self, response: Response) -> None:
        self._responses.append(response)
        self._count(response.tenant, response.outcome)
        self.sh.metrics.observe(
            "serve_latency_s", response.latency_s, LATENCY_BUCKETS
        )
        if response.outcome == OUTCOME_OVERLOADED:
            self._log(
                "warn", "request-shed", tenant=response.tenant,
                request=response.request_id,
                retry_after_s=response.retry_after_s,
            )
        else:
            self._log(
                "info", f"request-{response.outcome}", volatile=True,
                tenant=response.tenant, request=response.request_id,
                rows=response.rows, latency_s=round(response.latency_s, 6),
                cache_hit=response.cache_hit,
            )

    def _count(self, tenant: str, what: str) -> None:
        metrics = self.sh.metrics
        metrics.inc(f"SERVE_{what.upper()}")
        metrics.inc(f"SERVE_{what.upper()}_T_{sanitize_tenant(tenant)}")

    def _gauges(self) -> None:
        metrics = self.sh.metrics
        metrics.set_gauge("serve_virtual_now_s", round(self.now, 6))
        metrics.set_gauge("serve_queue_depth", self.scheduler.queued_count())
        metrics.set_gauge("serve_cache_hit_ratio", self.cache.hit_ratio)
        metrics.set_gauge(
            "serve_breakers_open",
            sum(1 for b in self.breakers.values() if b.state != "closed"),
        )

    def _log(self, level: str, event: str, **attrs: Any) -> None:
        self.sh._log_event(level, "serve", event, **attrs)

    def _scrape(self, event: str) -> None:
        telemetry = getattr(self.sh.runner, "telemetry", None)
        if telemetry is not None:
            telemetry.scrape(event, self.sh.metrics)

    @staticmethod
    def _summarize(answer: Any) -> Any:
        """A JSON-safe scalar view of an answer (wire form only)."""
        if answer is None or isinstance(answer, (int, float, bool, str)):
            return answer
        return None

    def summary(self) -> Dict[str, Any]:
        """Terminal-outcome counts plus cache/breaker/tenant snapshots."""
        counts = {outcome: 0 for outcome in (
            OUTCOME_SERVED, OUTCOME_DEGRADED, OUTCOME_OVERLOADED,
            OUTCOME_DEADLINE, OUTCOME_ERROR,
        )}
        for response in self._responses:
            counts[response.outcome] += 1
        return {
            "requests": len(self._responses),
            **counts,
            "cache": self.cache.snapshot(),
            "breakers": {
                name: b.snapshot() for name, b in sorted(self.breakers.items())
            },
            "tenants": self.scheduler.snapshot(),
            "virtual_now_s": round(self.now, 6),
        }


def _rows_of(answer: Any) -> int:
    if answer is None:
        return 0
    if isinstance(answer, bool):
        return int(answer)
    if isinstance(answer, (int, float)):
        return int(answer)
    if hasattr(answer, "regions"):
        return len(answer.regions)
    try:
        return len(answer)
    except TypeError:
        return 1
