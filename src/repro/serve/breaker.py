"""Per-dataset circuit breaker: closed -> open -> half-open.

One breaker guards each dataset the service touches. Repeated failures
(storage faults exhausting every replica, task faults exhausting every
retry) trip the breaker *open*; while open, queries against the dataset
are answered from index metadata only (see
:meth:`QueryService._approximate`) instead of erroring. After a cooldown
in virtual time the breaker goes *half-open* and lets exactly one probe
request through: a successful probe closes the breaker, a failed one
re-opens it for another cooldown.

The state machine is driven entirely by the service's virtual clock, so
chaos tests replay the same trips every run.
"""

from __future__ import annotations

from typing import Optional

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-counting breaker for one dataset."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        cooldown_s: float = 120.0,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.opened_at_s: Optional[float] = None
        self.trips = 0

    def allow(self, now_s: float) -> bool:
        """May a request touch the dataset at virtual time ``now_s``?

        In the open state this is also the half-open transition: once
        the cooldown has elapsed the *first* caller becomes the probe
        (returns True); until the probe resolves via
        :meth:`record_success` / :meth:`record_failure`, further callers
        are refused.
        """
        if self.state == STATE_CLOSED:
            return True
        if self.state == STATE_OPEN:
            if now_s - (self.opened_at_s or 0.0) >= self.cooldown_s:
                self.state = STATE_HALF_OPEN
                return True
            return False
        # Half-open: the in-flight probe owns the dataset.
        return False

    def record_success(self, now_s: float) -> bool:
        """Note a successful request; returns True when this closed it."""
        reopened = self.state != STATE_CLOSED
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.opened_at_s = None
        return reopened

    def record_failure(self, now_s: float) -> bool:
        """Note a failed request; returns True when this tripped it open."""
        self.consecutive_failures += 1
        should_open = (
            self.state == STATE_HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        )
        if should_open and self.state != STATE_OPEN:
            self.state = STATE_OPEN
            self.opened_at_s = now_s
            self.trips += 1
            return True
        if should_open:
            # Already open (defensive; open datasets are not probed).
            self.opened_at_s = now_s
        return False

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"failures={self.consecutive_failures}, trips={self.trips})"
        )
