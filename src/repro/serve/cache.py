"""LRU result cache keyed on the normalized query plan.

The cache key is the canonical JSON of
:meth:`~repro.observe.plan.PlanNode.normalized` — the backend- and
timing-independent view of the plan — so the same query against the same
file hits regardless of executor backend, worker count or how the query
text was spelled (the plan, not the text, is the identity).

Invalidation is by file version: every entry records the
:meth:`~repro.mapreduce.fs.FileSystem.version` of each input file at
insert time, and a lookup whose recorded versions no longer match the
namespace is discarded (counted as an invalidation, not a miss-only).
Deleting and re-creating a file bumps its version twice, so stale
answers can never be served across a mutation.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple


class ResultCache:
    """A bounded LRU of query results with version-stamped entries."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        #: key -> (versions {file: version}, value)
        self._entries: "OrderedDict[str, Tuple[Dict[str, int], Any]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(plan: Any) -> str:
        """The cache key of a :class:`~repro.observe.plan.PlanNode`."""
        return json.dumps(plan.normalized(), sort_keys=True, default=str)

    def get(self, key: str, fs: Any) -> Optional[Any]:
        """The cached value for ``key``, or None (miss or invalidated)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        versions, value = entry
        if any(fs.version(name) != v for name, v in versions.items()):
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, files: List[str], fs: Any, value: Any) -> None:
        """Insert ``value`` stamped with the current versions of ``files``."""
        self._entries[key] = (
            {name: fs.version(name) for name in files},
            value,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_ratio": round(self.hit_ratio, 6),
        }
