"""Wire types of the query service: requests, responses, quotas.

The service speaks a line-oriented protocol so it needs no network
dependency: one JSON object per line in, one JSON object per line out.
A request line is::

    {"tenant": "alice", "query": "range pts_idx 0,0,100,100",
     "deadline_s": 5.0}

(``deadline_s`` optional; ``#``-comment and blank lines are skipped).
The response line carries the terminal outcome of the request — exactly
one of :data:`OUTCOMES` — plus its simulated timing, so replayed
request scripts can be diffed against golden counts.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Terminal request outcomes. Every submitted request ends in exactly one.
OUTCOME_SERVED = "served"
OUTCOME_DEGRADED = "degraded"
OUTCOME_OVERLOADED = "overloaded"
OUTCOME_DEADLINE = "deadline"
OUTCOME_ERROR = "error"
OUTCOMES = (
    OUTCOME_SERVED,
    OUTCOME_DEGRADED,
    OUTCOME_OVERLOADED,
    OUTCOME_DEADLINE,
    OUTCOME_ERROR,
)

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class ServeError(RuntimeError):
    """Base class for typed service-level failures."""


class Overloaded(ServeError):
    """The request was shed by admission control.

    ``retry_after_s`` is the service's estimate of when the tenant's
    queue will have drained enough to admit a retry — the simulated
    equivalent of a ``Retry-After`` header.
    """

    def __init__(self, tenant: str, retry_after_s: float, reason: str):
        super().__init__(
            f"tenant {tenant!r} overloaded ({reason}); "
            f"retry after {retry_after_s:g}s"
        )
        self.tenant = tenant
        self.retry_after_s = retry_after_s
        self.reason = reason


class DatasetUnavailable(ServeError):
    """A tripped dataset has no degraded fallback for this operation."""

    def __init__(self, file_name: str, op: str):
        super().__init__(
            f"dataset {file_name!r} is unavailable (circuit open) and "
            f"{op!r} has no degraded fallback"
        )
        self.file_name = file_name
        self.op = op


class BadRequest(ServeError):
    """The request line or query text could not be understood."""


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits the scheduler and admission controller enforce.

    ``weight`` scales the tenant's share of cluster time (weighted-fair
    queueing: virtual time advances by ``cost / weight`` per dispatched
    request). ``max_inflight`` bounds concurrently executing requests,
    ``max_queue`` bounds the admission queue (beyond it requests are
    shed with :class:`Overloaded`), and ``cost_budget_s`` bounds the
    simulated seconds the tenant may consume per ``budget_window_s``
    sliding window (``None`` = unlimited).
    """

    weight: float = 1.0
    max_inflight: int = 2
    max_queue: int = 8
    cost_budget_s: Optional[float] = None
    budget_window_s: float = 60.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"quota weight must be positive, got {self.weight}")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if self.cost_budget_s is not None and self.cost_budget_s <= 0:
            raise ValueError("cost_budget_s must be positive (or None)")
        if self.budget_window_s <= 0:
            raise ValueError("budget_window_s must be positive")


#: Keys accepted in a ``--quota`` spec and their TenantQuota fields.
_QUOTA_KEYS = {
    "weight": ("weight", float),
    "inflight": ("max_inflight", int),
    "queue": ("max_queue", int),
    "budget": ("cost_budget_s", float),
    "window": ("budget_window_s", float),
}


def parse_quota_spec(spec: str) -> Dict[str, TenantQuota]:
    """Parse a ``--quota`` option: ``tenant=key=value[,key=value...]``.

    Keys: ``weight``, ``inflight``, ``queue``, ``budget``, ``window``.
    Example: ``alice=weight=2,inflight=1,queue=4,budget=30``.
    """
    name, sep, rest = spec.partition("=")
    name = name.strip()
    if not sep or not _TENANT_RE.match(name):
        raise ValueError(
            f"bad quota spec {spec!r}; expected tenant=key=value[,...]"
        )
    kwargs: Dict[str, Any] = {}
    for part in rest.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep or key.strip() not in _QUOTA_KEYS:
            raise ValueError(
                f"bad quota field {part!r} in {spec!r}; expected one of "
                f"{', '.join(sorted(_QUOTA_KEYS))}"
            )
        field_name, cast = _QUOTA_KEYS[key.strip()]
        try:
            kwargs[field_name] = cast(value)
        except ValueError:
            raise ValueError(
                f"bad quota value {value!r} for {key!r} in {spec!r}"
            ) from None
    return {name: TenantQuota(**kwargs)}


def sanitize_tenant(tenant: str) -> str:
    """Mangle a tenant name into a metric-name-safe suffix."""
    return re.sub(r"[^A-Za-z0-9_]", "_", tenant)


@dataclass
class Request:
    """One admitted (or shed) query request."""

    request_id: int
    tenant: str
    text: str
    deadline_s: Optional[float] = None
    arrival_s: float = 0.0
    #: True for clones injected by a ``burst:<tenant>:<n>`` service fault.
    synthetic: bool = False

    def __post_init__(self) -> None:
        if not _TENANT_RE.match(self.tenant):
            raise BadRequest(
                f"bad tenant name {self.tenant!r}; expected 1-64 chars of "
                "[A-Za-z0-9._-]"
            )


@dataclass
class Response:
    """The terminal outcome of one request.

    ``result`` keeps the in-process answer (an
    :class:`~repro.core.result.OperationResult` for served requests) for
    bit-identical comparisons; the wire form (:meth:`to_dict`) carries a
    JSON-safe summary instead.
    """

    request_id: int
    tenant: str
    query: str
    outcome: str
    answer: Any = None
    rows: int = 0
    degraded: bool = False
    cache_hit: bool = False
    arrival_s: float = 0.0
    start_s: float = 0.0
    finish_s: float = 0.0
    latency_s: float = 0.0
    cost_s: float = 0.0
    retry_after_s: Optional[float] = None
    error: str = ""
    error_type: str = ""
    synthetic: bool = False
    result: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {self.outcome!r}")

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "id": self.request_id,
            "tenant": self.tenant,
            "query": self.query,
            "outcome": self.outcome,
            "rows": self.rows,
            "degraded": self.degraded,
            "cache_hit": self.cache_hit,
            "latency_s": round(self.latency_s, 6),
            "cost_s": round(self.cost_s, 6),
        }
        if self.answer is not None and isinstance(
            self.answer, (int, float, str, bool)
        ):
            record["answer"] = self.answer
        if self.retry_after_s is not None:
            record["retry_after_s"] = round(self.retry_after_s, 6)
        if self.error:
            record["error"] = self.error
            record["error_type"] = self.error_type
        if self.synthetic:
            record["synthetic"] = True
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def parse_request_line(line: str) -> Optional[Dict[str, Any]]:
    """Decode one request line; ``None`` for blanks and ``#`` comments.

    Returns ``{"tenant", "query", "deadline_s"}`` with ``deadline_s``
    possibly absent. Raises :class:`BadRequest` for malformed lines.
    """
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    try:
        record = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BadRequest(f"bad request line {text!r}: {exc}") from None
    if not isinstance(record, dict):
        raise BadRequest(f"bad request line {text!r}: expected a JSON object")
    if "tenant" not in record or "query" not in record:
        raise BadRequest(
            f"bad request line {text!r}: needs 'tenant' and 'query' keys"
        )
    allowed = {"tenant", "query", "deadline_s"}
    unknown = set(record) - allowed
    if unknown:
        raise BadRequest(
            f"bad request line {text!r}: unknown keys {sorted(unknown)}"
        )
    return record
