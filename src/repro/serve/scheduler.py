"""Admission control and weighted-fair dispatch across tenants.

The scheduler is a start-time-fair-queueing (SFQ) variant on the
service's virtual clock: each tenant carries a virtual time ``vt`` that
advances by ``cost / weight`` per dispatched request, and the dispatcher
always picks the backlogged tenant with the smallest ``vt`` (ties broken
by name for determinism). Heavier weights therefore advance slower and
win more slots; a tenant hit by a ``slowtenant`` fault accrues ``vt``
faster and is automatically contained.

Starvation protection is the SFQ catch-up rule: a tenant that was idle
re-enters at ``max(own vt, min vt of busy tenants)``, so sleeping never
banks credit that would later starve everyone else, and a backlogged
tenant's ``vt`` always stays within one request of the frontier — every
queue drains.

Admission is per tenant and two-tiered: a bounded queue
(:attr:`TenantQuota.max_queue`, overflow shed with
:class:`~repro.serve.protocol.Overloaded`), and eligibility gates at
dispatch time (:attr:`TenantQuota.max_inflight` concurrent requests,
:attr:`TenantQuota.cost_budget_s` simulated seconds per sliding window).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.serve.protocol import Overloaded, Request, TenantQuota


class TenantState:
    """Scheduler-side bookkeeping for one tenant."""

    def __init__(self, name: str, quota: TenantQuota):
        self.name = name
        self.quota = quota
        self.queue: Deque[Request] = deque()
        self.vt = 0.0
        #: Virtual finish times of dispatched, still-running requests.
        self.inflight: List[float] = []
        #: (dispatch time, cost) pairs inside the sliding budget window.
        self.spend: Deque[Tuple[float, float]] = deque()
        self.peak_inflight = 0
        self.shed = 0
        self.dispatched = 0

    # -- time-dependent views ------------------------------------------
    def prune(self, now_s: float) -> None:
        """Drop finished in-flight entries and expired window spend."""
        self.inflight = [f for f in self.inflight if f > now_s]
        horizon = now_s - self.quota.budget_window_s
        while self.spend and self.spend[0][0] <= horizon:
            self.spend.popleft()

    def window_spend(self, now_s: float) -> float:
        horizon = now_s - self.quota.budget_window_s
        return sum(cost for at, cost in self.spend if at > horizon)

    def busy(self) -> bool:
        return bool(self.queue or self.inflight)

    def eligible(self, now_s: float) -> bool:
        """May this tenant dispatch its head-of-queue request now?"""
        if not self.queue:
            return False
        if len(self.inflight) >= self.quota.max_inflight:
            return False
        budget = self.quota.cost_budget_s
        if budget is not None and self.window_spend(now_s) >= budget:
            return False
        return True

    def blocking_events(self, now_s: float) -> List[float]:
        """Future times at which this tenant could become eligible."""
        events: List[float] = []
        if not self.queue:
            return events
        if len(self.inflight) >= self.quota.max_inflight and self.inflight:
            events.append(min(self.inflight))
        budget = self.quota.cost_budget_s
        if budget is not None and self.spend:
            if self.window_spend(now_s) >= budget:
                # Eligibility returns when the oldest spend entry rolls
                # out of the sliding window.
                events.append(self.spend[0][0] + self.quota.budget_window_s)
        return [e for e in events if e > now_s]

    def on_dispatched(self, now_s: float, cost_s: float, finish_s: float) -> None:
        self.vt += cost_s / self.quota.weight
        self.inflight.append(finish_s)
        self.spend.append((now_s, cost_s))
        self.dispatched += 1
        self.peak_inflight = max(self.peak_inflight, len(self.inflight))


class FairScheduler:
    """Per-tenant queues plus the SFQ pick rule."""

    def __init__(
        self,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
    ):
        self.default_quota = default_quota or TenantQuota()
        self._quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self._tenants: Dict[str, TenantState] = {}
        #: Running mean cost of completed requests (retry-after hint).
        self.avg_cost_s = 1.0
        self._completed = 0

    def tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            quota = self._quotas.get(name, self.default_quota)
            state = self._tenants[name] = TenantState(name, quota)
        return state

    def tenants(self) -> List[TenantState]:
        return [self._tenants[name] for name in sorted(self._tenants)]

    # -- admission ------------------------------------------------------
    def enqueue(self, request: Request, now_s: float) -> None:
        """Admit ``request`` or shed it with :class:`Overloaded`."""
        state = self.tenant(request.tenant)
        state.prune(now_s)
        if len(state.queue) >= state.quota.max_queue:
            state.shed += 1
            raise Overloaded(
                request.tenant,
                retry_after_s=self.retry_after(state, now_s),
                reason=f"queue full ({state.quota.max_queue})",
            )
        if not state.busy():
            # SFQ catch-up: re-entering tenants start at the frontier.
            busy_vts = [
                t.vt for t in self._tenants.values() if t.busy()
            ]
            if busy_vts:
                state.vt = max(state.vt, min(busy_vts))
        state.queue.append(request)

    def retry_after(self, state: TenantState, now_s: float) -> float:
        """Estimated wait until the tenant's backlog drains one slot."""
        backlog = len(state.queue) + len(state.inflight)
        estimate = backlog * self.avg_cost_s / state.quota.weight
        if state.inflight:
            estimate = max(estimate, min(state.inflight) - now_s)
        return round(max(estimate, self.avg_cost_s), 6)

    # -- dispatch -------------------------------------------------------
    def has_queued(self) -> bool:
        return any(t.queue for t in self._tenants.values())

    def queued_count(self) -> int:
        return sum(len(t.queue) for t in self._tenants.values())

    def pick(self, now_s: float) -> Optional[TenantState]:
        """The eligible tenant with the smallest virtual time, if any."""
        best: Optional[TenantState] = None
        for state in self._tenants.values():
            state.prune(now_s)
            if not state.eligible(now_s):
                continue
            if best is None or (state.vt, state.name) < (best.vt, best.name):
                best = state
        return best

    def next_event_after(self, now_s: float) -> Optional[float]:
        """Earliest future time a currently-blocked tenant could unblock."""
        events: List[float] = []
        for state in self._tenants.values():
            events.extend(state.blocking_events(now_s))
        return min(events) if events else None

    def note_completed(self, cost_s: float) -> None:
        """Fold a finished request's cost into the retry-after estimate."""
        self._completed += 1
        self.avg_cost_s += (cost_s - self.avg_cost_s) / self._completed

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            t.name: {
                "queued": len(t.queue),
                "inflight": len(t.inflight),
                "peak_inflight": t.peak_inflight,
                "dispatched": t.dispatched,
                "shed": t.shed,
                "vt": round(t.vt, 6),
            }
            for t in self.tenants()
        }
