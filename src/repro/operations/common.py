"""Small helpers shared by the operations layer."""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.geometry import Point


def as_point(record: Any) -> Point:
    """The point of a point-record (bare Point or a Feature wrapping one).

    The computational-geometry operations (skyline, convex hull, closest
    and farthest pair) are defined over point sets; extended shapes are
    rejected rather than silently reduced to centroids.
    """
    if isinstance(record, Point):
        return record
    shape = getattr(record, "shape", None)
    if isinstance(shape, Point):
        return shape
    raise TypeError(
        f"operation defined on points only; found {type(record).__name__}"
    )


def as_points(records: Iterable[Any]) -> List[Point]:
    """Convert a record iterable to points (see :func:`as_point`)."""
    return [as_point(r) for r in records]
