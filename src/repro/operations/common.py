"""Small helpers shared by the operations layer."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.geometry import Point
from repro.observe.plan import PlanNode, estimate_job_cost


def as_point(record: Any) -> Point:
    """The point of a point-record (bare Point or a Feature wrapping one).

    The computational-geometry operations (skyline, convex hull, closest
    and farthest pair) are defined over point sets; extended shapes are
    rejected rather than silently reduced to centroids.
    """
    if isinstance(record, Point):
        return record
    shape = getattr(record, "shape", None)
    if isinstance(shape, Point):
        return shape
    raise TypeError(
        f"operation defined on points only; found {type(record).__name__}"
    )


def as_points(records: Iterable[Any]) -> List[Point]:
    """Convert a record iterable to points (see :func:`as_point`)."""
    return [as_point(r) for r in records]


# ----------------------------------------------------------------------
# EXPLAIN plan builders shared by the single-file operations
# ----------------------------------------------------------------------
def plan_indexed_scan(
    runner: Any,
    op_name: str,
    job_name: str,
    gindex: Any,
    selected: List[Any],
    map_desc: str,
    reduce_desc: str = "none",
    shuffle_records: int = 0,
    detail: Optional[Dict[str, Any]] = None,
    filter_desc: str = "every-partition",
) -> PlanNode:
    """One-round indexed plan: filter step + a single partition-scan job."""
    root = PlanNode(
        op_name,
        kind="operation",
        detail={
            "strategy": "indexed",
            "technique": gindex.technique,
            **(detail or {}),
        },
        estimated={"rounds": 1},
    )
    root.add(
        PlanNode(
            "GlobalIndexFilter",
            kind="filter",
            detail={"filter": filter_desc},
            estimated={
                "partitions_total": len(gindex),
                "partitions_scanned": len(selected),
                "partitions_pruned": len(gindex) - len(selected),
            },
        )
    )
    records_in = [c.num_records for c in selected]
    root.add(
        PlanNode(
            job_name,
            kind="job",
            detail={"map": map_desc, "reduce": reduce_desc},
            estimated={
                "blocks_read": len(selected),
                "records_read": sum(records_in),
                "shuffle_records": shuffle_records,
                "cost": estimate_job_cost(
                    runner.cluster,
                    records_in,
                    reduce_records_in=(
                        [shuffle_records] if shuffle_records else []
                    ),
                    shuffle_records=shuffle_records,
                ),
            },
        )
    )
    return root


def plan_full_scan(
    runner: Any,
    file_name: str,
    op_name: str,
    job_name: str,
    map_desc: str,
    reduce_desc: str = "none",
    shuffle_per_block: int = 0,
    detail: Optional[Dict[str, Any]] = None,
) -> PlanNode:
    """One-round heap-file plan: every block read, optional merge reducer."""
    entry = runner.fs.get(file_name)
    shuffle = shuffle_per_block * entry.num_blocks
    root = PlanNode(
        op_name,
        kind="operation",
        detail={"strategy": "full-scan", **(detail or {})},
        estimated={"rounds": 1},
    )
    root.add(
        PlanNode(
            job_name,
            kind="job",
            detail={"map": map_desc, "reduce": reduce_desc},
            estimated={
                "blocks_read": entry.num_blocks,
                "records_read": entry.num_records,
                "shuffle_records": shuffle,
                "cost": estimate_job_cost(
                    runner.cluster,
                    [len(b) for b in entry.blocks],
                    reduce_records_in=[shuffle] if shuffle else [],
                    shuffle_records=shuffle,
                ),
            },
        )
    )
    return root
