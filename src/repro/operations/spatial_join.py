"""Spatial join: all overlapping pairs across two datasets.

Two algorithms, as in the papers:

* **SJMR** (Spatial Join with MapReduce) — the Hadoop baseline for
  non-indexed inputs. A single job repartitions both inputs on a uniform
  grid in the map phase and joins each grid cell's contents in the reduce
  phase with a plane sweep, using the reference-point technique to report
  each pair exactly once.
* **Distributed join (DJ)** — the SpatialHadoop algorithm for two indexed
  files. The driver joins the two *global indexes* to find the overlapping
  partition pairs; one map task per surviving pair joins the two blocks
  locally. Pairs of partitions that do not overlap are never read — that is
  the index's whole advantage, and experiment E4 counts exactly this.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Tuple

from repro.core.result import OperationResult
from repro.core.splitter import global_index_of
from repro.geometry import Point, Rectangle, vectorized
from repro.index.partitioners.base import shape_mbr
from repro.index.partitioners.grid import GridPartitioner
from repro.mapreduce import Block, Job, JobRunner
from repro.mapreduce.types import InputSplit
from repro.observe.plan import PlanNode, estimate_job_cost


#: Below this per-side size the windowed sweep's array setup costs more
#: than the scalar inner loops it replaces.
_SWEEP_MIN_RECORDS = 8


def plane_sweep_join(left: List[Any], right: List[Any]) -> List[Tuple[Any, Any]]:
    """All (l, r) pairs with intersecting MBRs, by x-sweep.

    Classic forward plane sweep over the records of one partition pair;
    O(n log n + k) for typical inputs. With NumPy available the inner
    loops are replaced by ``searchsorted`` windows plus one intersection
    mask per sweep step — same pairs, same emit order.
    """
    ls = sorted(left, key=lambda r: shape_mbr(r).x1)
    rs = sorted(right, key=lambda r: shape_mbr(r).x1)
    lm = [shape_mbr(r) for r in ls]
    rm = [shape_mbr(r) for r in rs]
    if (
        vectorized.enabled()
        and vectorized.has_numpy()
        and len(ls) >= _SWEEP_MIN_RECORDS
        and len(rs) >= _SWEEP_MIN_RECORDS
    ):
        return _plane_sweep_windowed(ls, rs, lm, rm)
    out: List[Tuple[Any, Any]] = []
    i = j = 0
    nl, nr = len(ls), len(rs)
    while i < nl and j < nr:
        l_mbr = lm[i]
        r_mbr = rm[j]
        if l_mbr.x1 <= r_mbr.x1:
            # Sweep ls[i] against right records starting at j.
            jj = j
            while jj < nr:
                other = rm[jj]
                if other.x1 > l_mbr.x2:
                    break
                if l_mbr.intersects(other):
                    out.append((ls[i], rs[jj]))
                jj += 1
            i += 1
        else:
            ii = i
            while ii < nl:
                other = lm[ii]
                if other.x1 > r_mbr.x2:
                    break
                if other.intersects(r_mbr):
                    out.append((ls[ii], rs[j]))
                ii += 1
            j += 1
    return out


def _plane_sweep_windowed(ls, rs, lm, rm) -> List[Tuple[Any, Any]]:
    """NumPy replay of the scalar sweep.

    The scalar inner loop scans forward from the sweep frontier and
    breaks at the first record whose ``x1`` passes the active record's
    ``x2`` — on an x1-sorted side that stop position is exactly
    ``searchsorted(x1s, x2, side="right")`` (ties included, like the
    scalar ``>`` break). One closed-intersection mask over the window
    then emits the same pairs in the same ascending order.
    """
    import numpy as np

    nl, nr = len(ls), len(rs)
    lx1 = np.fromiter((m.x1 for m in lm), np.float64, nl)
    ly1 = np.fromiter((m.y1 for m in lm), np.float64, nl)
    lx2 = np.fromiter((m.x2 for m in lm), np.float64, nl)
    ly2 = np.fromiter((m.y2 for m in lm), np.float64, nl)
    rx1 = np.fromiter((m.x1 for m in rm), np.float64, nr)
    ry1 = np.fromiter((m.y1 for m in rm), np.float64, nr)
    rx2 = np.fromiter((m.x2 for m in rm), np.float64, nr)
    ry2 = np.fromiter((m.y2 for m in rm), np.float64, nr)
    out: List[Tuple[Any, Any]] = []
    append = out.append
    i = j = 0
    while i < nl and j < nr:
        if lx1[i] <= rx1[j]:
            hi = int(np.searchsorted(rx1, lx2[i], side="right"))
            if hi > j:
                w = slice(j, hi)
                mask = (
                    (rx2[w] >= lx1[i])
                    & (ry1[w] <= ly2[i])
                    & (ry2[w] >= ly1[i])
                )
                l_rec = ls[i]
                for t in np.flatnonzero(mask).tolist():
                    append((l_rec, rs[j + t]))
            i += 1
        else:
            hi = int(np.searchsorted(lx1, rx2[j], side="right"))
            if hi > i:
                w = slice(i, hi)
                mask = (
                    (lx2[w] >= rx1[j])
                    & (ly1[w] <= ry2[j])
                    & (ly2[w] >= ry1[j])
                )
                r_rec = rs[j]
                for t in np.flatnonzero(mask).tolist():
                    append((ls[i + t], r_rec))
            j += 1
    return out


def _pair_owned_by(cell: Rectangle, a: Rectangle, b: Rectangle) -> bool:
    """Reference-point duplicate avoidance for joined pairs.

    The pair is reported by the cell containing the bottom-left corner of
    the intersection of the two MBRs.
    """
    inter = a.intersection(b)
    if inter is None:  # touching at a boundary: use the shared corner
        inter = Rectangle(
            max(a.x1, b.x1), max(a.y1, b.y1), max(a.x1, b.x1), max(a.y1, b.y1)
        )
    return cell.contains_point_left_inclusive(Point(inter.x1, inter.y1))


# ----------------------------------------------------------------------
# SJMR: the Hadoop baseline
# ----------------------------------------------------------------------
def _sjmr_map(_key, records, ctx):
    """SJMR repartition map (module-level: picklable).

    A self-join (both sides the same file) tags every record for both
    sides; otherwise the originating file decides the side.
    """
    if ctx.config["self_join"]:
        tags = (0, 1)
    else:
        tags = (0,) if ctx.split.file == ctx.config["left"] else (1,)
    g: GridPartitioner = ctx.config["grid"]
    for record in records:
        for cell_id in g.overlapping_cells(shape_mbr(record)):
            for tag in tags:
                ctx.emit(cell_id, (tag, record))


def _sjmr_reduce(cell_id, tagged, ctx):
    """SJMR per-cell plane-sweep join (module-level: picklable)."""
    g: GridPartitioner = ctx.config["grid"]
    cell = g.cell_rect(cell_id)
    left = [r for t, r in tagged if t == 0]
    right = [r for t, r in tagged if t == 1]
    for l, r in plane_sweep_join(left, right):
        if _pair_owned_by(cell, shape_mbr(l), shape_mbr(r)):
            ctx.emit(cell_id, (l, r))


def spatial_join_sjmr(
    runner: JobRunner,
    left_file: str,
    right_file: str,
    grid_size: Optional[int] = None,
) -> OperationResult:
    """Grid-repartition join of two heap files in one MapReduce job."""
    fs = runner.fs
    total = fs.num_records(left_file) + fs.num_records(right_file)
    if total == 0:
        return OperationResult(answer=[], jobs=[], system="hadoop")

    # The driver needs the space MBR to define the repartition grid; SJMR
    # obtains it from a statistics pass over each input (free for indexed
    # files, one map-only job for heap files).
    from repro.operations.stats import file_stats

    stats_jobs = []
    mbr: Optional[Rectangle] = None
    for name in dict.fromkeys((left_file, right_file)):
        stats_op = file_stats(runner, name)
        stats_jobs.extend(stats_op.jobs)
        file_mbr = stats_op.answer.mbr
        if file_mbr is not None:
            mbr = file_mbr if mbr is None else mbr.union(file_mbr)
    if mbr is None:
        return OperationResult(answer=[], jobs=stats_jobs, system="hadoop")
    size = grid_size or max(1, math.ceil(math.sqrt(total / fs.default_block_capacity)))
    grid = GridPartitioner(mbr, grid_size=size)

    input_files = (
        [left_file] if left_file == right_file else [left_file, right_file]
    )
    with runner.tracer.span(
        f"op:sjmr({left_file},{right_file})",
        kind="operation",
        left=left_file,
        right=right_file,
        grid_cells=grid.num_cells(),
    ) as op_span:
        job = Job(
            input_file=input_files,
            map_fn=_sjmr_map,
            reduce_fn=_sjmr_reduce,
            num_reducers=grid.num_cells(),
            config={
                "grid": grid,
                "left": left_file,
                "self_join": left_file == right_file,
            },
            name=f"sjmr({left_file},{right_file})",
        )
        result = runner.run(job)
        op_span.set("pairs", len(result.output))
    return OperationResult(
        answer=result.output, jobs=stats_jobs + [result], system="hadoop"
    )


# ----------------------------------------------------------------------
# Distributed join: the SpatialHadoop algorithm
# ----------------------------------------------------------------------
def _pair_splitter(fs_, job_):
    """One split per overlapping-partition-pair block."""
    entry = fs_.get(job_.input_file)
    return [
        InputSplit(
            file=job_.input_file,
            block_index=i,
            block=block,
            key=block.metadata["cell"],
        )
        for i, block in enumerate(entry.blocks)
    ]


def _dj_map(cell, tagged, ctx):
    """Distributed-join per-pair plane sweep (module-level: picklable)."""
    left = [r for t, r in tagged if t == 0]
    right = [r for t, r in tagged if t == 1]
    for l, r in plane_sweep_join(left, right):
        if ctx.config["ref_dedup"] and not _pair_owned_by(
            cell, shape_mbr(l), shape_mbr(r)
        ):
            continue
        ctx.write_output((l, r))


def spatial_join_distributed(
    runner: JobRunner, left_file: str, right_file: str
) -> OperationResult:
    """Index-aware join of two spatially indexed files."""
    fs = runner.fs
    left_index = global_index_of(fs, left_file)
    right_index = global_index_of(fs, right_file)
    if left_index is None or right_index is None:
        raise ValueError("distributed join requires both inputs to be indexed")

    # The driver reads partition records directly (no map-input splits),
    # so route the read through the checksummed HDFS path: replicas fail
    # over, and a block with no healthy copy fails typed instead of
    # serving rotten data.
    runner.verify_driver_read(left_file, right_file)
    left_entry = fs.get(left_file)
    right_entry = fs.get(right_file)
    left_blocks = {b.metadata["cell_id"]: b for b in left_entry.blocks}
    right_blocks = {b.metadata["cell_id"]: b for b in right_entry.blocks}

    tracer = runner.tracer
    with tracer.span(
        f"op:dj({left_file},{right_file})",
        kind="operation",
        left=left_file,
        right=right_file,
    ) as op_span:
        # Join the global indexes: one virtual split per overlapping
        # cell pair.
        with tracer.span("dj:index-join", kind="phase") as pair_span:
            pair_blocks: List[Block] = []
            for lc in left_index:
                for rc in right_index:
                    inter = lc.mbr.intersection(rc.mbr)
                    if inter is None:
                        continue
                    lb = left_blocks[lc.cell_id]
                    rb = right_blocks[rc.cell_id]
                    records = (
                        [(0, r) for r in lb.records]
                        + [(1, r) for r in rb.records]
                    )
                    pair_blocks.append(
                        Block(
                            records=records,
                            metadata={
                                "cell": inter,
                                "pair": (lc.cell_id, rc.cell_id),
                            },
                        )
                    )
            pair_span.set("pairs", len(pair_blocks))
            pair_span.set(
                "pairs_skipped",
                len(left_blocks) * len(right_blocks) - len(pair_blocks),
            )

        pairs_file = f"__dj_pairs__{left_file}__{right_file}"
        if fs.exists(pairs_file):
            fs.delete(pairs_file)
        fs.create_file_from_blocks(pairs_file, pair_blocks)

        # Duplicate avoidance. When *both* indexes are disjoint, the
        # cell-pair intersections refine both tilings, so the
        # reference-point rule reports every pair exactly once with no
        # communication. When at least one index assigns each record to a
        # single cell, duplicates can only arise from the replicated side,
        # and a driver-side identity dedup (a stand-in for Hadoop's
        # dedup-by-key round) removes them.
        reference_point_dedup = left_index.disjoint and right_index.disjoint

        config = {"ref_dedup": reference_point_dedup}
        if not reference_point_dedup:
            # The driver-side fallback below dedups by object identity,
            # which only holds when map tasks run in the driver process:
            # pin this job to the serial backend so a parallel runner
            # cannot break it.
            config["workers"] = 1
        job = Job(
            input_file=pairs_file,
            map_fn=_dj_map,
            splitter=_pair_splitter,
            config=config,
            name=f"dj({left_file},{right_file})",
        )
        try:
            result = runner.run(job)
        finally:
            fs.delete(pairs_file)
        answer = result.output
        if not reference_point_dedup:
            seen = set()
            unique = []
            for pair in answer:
                key = (id(pair[0]), id(pair[1]))
                if key not in seen:
                    seen.add(key)
                    unique.append(pair)
            answer = unique
        op_span.set("result_pairs", len(answer))
        op_span.set(
            "partitions_pruned",
            len(left_blocks) * len(right_blocks) - len(pair_blocks),
        )
    return OperationResult(answer=answer, jobs=[result])


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def plan_spatial_join(
    runner: JobRunner, left_file: str, right_file: str
) -> PlanNode:
    """EXPLAIN plan for a join: distributed join when both sides are
    indexed (the partition-pair pruning is computed exactly from the two
    global indexes), SJMR otherwise."""
    fs = runner.fs
    left_index = global_index_of(fs, left_file)
    right_index = global_index_of(fs, right_file)

    if left_index is not None and right_index is not None:
        pairs = [
            (lc, rc)
            for lc in left_index
            for rc in right_index
            if lc.mbr.intersection(rc.mbr) is not None
        ]
        total_pairs = len(left_index) * len(right_index)
        root = PlanNode(
            f"SpatialJoin({left_file},{right_file})",
            kind="operation",
            detail={
                "strategy": "distributed-join",
                "left_technique": left_index.technique,
                "right_technique": right_index.technique,
                "dedup": "reference-point"
                if left_index.disjoint and right_index.disjoint
                else "driver-side",
            },
            estimated={"rounds": 1},
        )
        root.add(
            PlanNode(
                "GlobalIndexJoin",
                kind="filter",
                detail={"filter": "overlapping partition pairs"},
                estimated={
                    "partitions_total": total_pairs,
                    "partitions_scanned": len(pairs),
                    "partitions_pruned": total_pairs - len(pairs),
                },
            )
        )
        records_in = [lc.num_records + rc.num_records for lc, rc in pairs]
        root.add(
            PlanNode(
                f"job:dj({left_file},{right_file})",
                kind="job",
                detail={"map": "per-pair plane sweep", "reduce": "none"},
                estimated={
                    "blocks_read": len(pairs),
                    "records_read": sum(records_in),
                    "cost": estimate_job_cost(runner.cluster, records_in),
                },
            )
        )
        return root

    # SJMR: statistics pass per distinct heap input, then the
    # grid-repartition join.
    total = fs.num_records(left_file) + fs.num_records(right_file)
    self_join = left_file == right_file
    size = max(1, math.ceil(math.sqrt(max(1, total) / fs.default_block_capacity)))
    root = PlanNode(
        f"SpatialJoin({left_file},{right_file})",
        kind="operation",
        detail={
            "strategy": "sjmr",
            "grid": f"{size}x{size}",
            "dedup": "reference-point",
        },
    )
    stats_jobs = 0
    for name in dict.fromkeys((left_file, right_file)):
        if global_index_of(fs, name) is not None:
            continue  # indexed side: statistics come free from the index
        stats_jobs += 1
        entry = fs.get(name)
        root.add(
            PlanNode(
                f"job:stats({name})",
                kind="job",
                detail={"map": "per-block MBR + count", "reduce": "merge"},
                estimated={
                    "blocks_read": entry.num_blocks,
                    "records_read": entry.num_records,
                    "shuffle_records": entry.num_blocks,
                    "cost": estimate_job_cost(
                        runner.cluster,
                        [len(b) for b in entry.blocks],
                        reduce_records_in=[entry.num_blocks],
                        shuffle_records=entry.num_blocks,
                    ),
                },
            )
        )
    root.estimated = {"rounds": stats_jobs + 1}
    blocks = fs.num_blocks(left_file)
    if not self_join:
        blocks += fs.num_blocks(right_file)
    shuffle = total * (2 if self_join else 1)  # lower bound: 1 cell/record
    root.add(
        PlanNode(
            f"job:sjmr({left_file},{right_file})",
            kind="job",
            detail={
                "map": "grid repartition",
                "reduce": "per-cell plane sweep",
                "reducers": size * size,
            },
            estimated={
                "blocks_read": blocks,
                "records_read": total,
                "shuffle_records": shuffle,
                "cost": estimate_job_cost(
                    runner.cluster,
                    [total // max(1, blocks)] * blocks,
                    reduce_records_in=[
                        shuffle // max(1, size * size)
                    ]
                    * (size * size),
                    shuffle_records=shuffle,
                ),
            },
        )
    )
    return root
