"""Skyline (max-max maximal points) in MapReduce.

Three algorithms, following the paper's progression:

* **Hadoop**: local skyline per block (map), global skyline in one reducer.
* **SpatialHadoop**: the same plus the *filter* step — partitions whose
  top-right corner is dominated by a corner of another partition's minimal
  MBR cannot contribute and are pruned before any block is read.
* **Output-sensitive** (disjoint indexes only): a map-only job; each
  partition prunes its local skyline against the broadcast *global
  dominance power set* (SKY) and writes surviving points straight to the
  output — no single-machine merge at all.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.result import OperationResult
from repro.core.reader import spatial_reader
from repro.core.splitter import global_index_of, spatial_splitter
from repro.geometry import Point, Rectangle
from repro.geometry.algorithms.skyline import dominates, skyline
from repro.observe.plan import PlanNode
from repro.operations.common import as_points, plan_full_scan, plan_indexed_scan
from repro.index.global_index import Cell, GlobalIndex
from repro.mapreduce import Counter, Job, JobRunner


def _corner_dominators(mbr: Rectangle) -> List[Point]:
    """Corners of a *minimal* MBR guaranteed to dominate transitively.

    Minimality puts at least one record point on every MBR edge, so a
    record exists that dominates anything the bottom-left, bottom-right or
    top-left corner dominates.
    """
    return [mbr.bottom_left, mbr.bottom_right, mbr.top_left]


def _cell_dominated(candidate: Cell, others: List[Cell]) -> bool:
    """The paper's filter rule on minimal content MBRs."""
    target = candidate.tight_mbr.top_right
    for other in others:
        if other.cell_id == candidate.cell_id:
            continue
        if any(dominates(c, target) for c in _corner_dominators(other.tight_mbr)):
            return True
    return False


def skyline_filter(gindex: GlobalIndex) -> List[Cell]:
    """Keep only partitions that can contribute skyline points."""
    cells = list(gindex)
    return [c for c in cells if not _cell_dominated(c, cells)]


def _map_local_skyline(_key, records, ctx):
    for p in skyline(as_points(records)):
        ctx.emit(1, p)


def _reduce_global_skyline(_key, points, ctx):
    for p in skyline(points):
        ctx.emit(1, p)


def skyline_hadoop(runner: JobRunner, file_name: str) -> OperationResult:
    """Unindexed skyline: all blocks processed, single merging reducer."""
    job = Job(
        input_file=file_name,
        map_fn=_map_local_skyline,
        combine_fn=_reduce_global_skyline,
        reduce_fn=_reduce_global_skyline,
        name=f"skyline-hadoop({file_name})",
    )
    result = runner.run(job)
    return OperationResult(
        answer=sorted(result.output), jobs=[result], system="hadoop"
    )


def skyline_spatial(
    runner: JobRunner, file_name: str, prune: bool = True
) -> OperationResult:
    """Indexed skyline with the partition-dominance filter step."""
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    with runner.tracer.span(
        f"op:skyline-spatial({file_name})",
        kind="operation",
        file=file_name,
        pruning=prune,
    ) as op_span:
        job = Job(
            input_file=file_name,
            map_fn=_map_local_skyline,
            combine_fn=_reduce_global_skyline,
            reduce_fn=_reduce_global_skyline,
            splitter=spatial_splitter(skyline_filter if prune else None),
            reader=spatial_reader,
            name=f"skyline-spatial({file_name})",
        )
        result = runner.run(job)
        op_span.set("skyline_size", len(result.output))
        op_span.set(
            "partitions_pruned", result.counters.get(Counter.BLOCKS_PRUNED)
        )
    return OperationResult(answer=sorted(result.output), jobs=[result])


def skyline_output_sensitive(
    runner: JobRunner, file_name: str
) -> OperationResult:
    """Map-only skyline using the dominance-power rule (Theorem 2).

    Requires a *disjoint* index: each partition is separable from every
    other by an orthogonal line, which is what makes the two-corner
    dominance power set of a cell sufficient.
    """
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    if not gindex.disjoint:
        raise ValueError("the output-sensitive skyline needs a disjoint index")

    # Global dominance power set: skyline of every cell's top-left and
    # bottom-right tight-MBR corners (computed by the master, broadcast).
    power_points: List[Point] = []
    for cell in gindex:
        mbr = cell.tight_mbr
        power_points.extend((mbr.top_left, mbr.bottom_right))
    sky = skyline(power_points)

    def map_fn(cell, records, ctx):
        local = skyline(as_points(records))
        for p in local:
            if not any(dominates(q, p) for q in ctx.config["sky"]):
                ctx.write_output(p)

    job = Job(
        input_file=file_name,
        map_fn=map_fn,
        splitter=spatial_splitter(skyline_filter),
        reader=spatial_reader,
        config={"sky": sky},
        name=f"skyline-os({file_name})",
    )
    result = runner.run(job)
    return OperationResult(answer=sorted(result.output), jobs=[result])


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def est_summary_size(num_records: int) -> int:
    """Expected skyline/hull size of a uniform point set: O(log n)."""
    return max(1, round(math.log(num_records + 1)))


def plan_skyline(
    runner: JobRunner, file_name: str, prune: bool = True
) -> PlanNode:
    """EXPLAIN plan for the skyline operation."""
    gindex = global_index_of(runner.fs, file_name)
    op_name = f"Skyline({file_name})"
    if gindex is None:
        entry = runner.fs.get(file_name)
        return plan_full_scan(
            runner,
            file_name,
            op_name,
            f"job:skyline-hadoop({file_name})",
            map_desc="per-block local skyline",
            reduce_desc="global skyline",
            shuffle_per_block=est_summary_size(
                entry.num_records // max(1, entry.num_blocks)
            ),
        )
    selected = skyline_filter(gindex) if prune else list(gindex)
    return plan_indexed_scan(
        runner,
        op_name,
        f"job:skyline-spatial({file_name})",
        gindex,
        selected,
        map_desc="per-partition local skyline",
        reduce_desc="global skyline",
        shuffle_records=sum(est_summary_size(c.num_records) for c in selected),
        filter_desc="partition-dominance" if prune else "every-partition",
    )
