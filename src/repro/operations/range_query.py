"""Range query: all records intersecting a query rectangle.

The Hadoop variant scans every block. The SpatialHadoop variant prunes
non-overlapping partitions with the SpatialFileSplitter, searches each
surviving partition's local index, and applies the *reference point*
duplicate-avoidance technique when the index replicates records across
disjoint partitions.
"""

from __future__ import annotations

from repro.core.result import OperationResult
from repro.core.reader import local_index_of, spatial_reader
from repro.core.splitter import global_index_of, overlapping_filter, spatial_splitter
from repro.geometry import Point, Rectangle
from repro.index.partitioners.base import shape_mbr
from repro.mapreduce import Job, JobRunner


def _matches(record, query: Rectangle) -> bool:
    """MBR-level match: the record's MBR intersects the query window."""
    return query.intersects(shape_mbr(record))


def _owned_by_cell(record_mbr: Rectangle, cell: Rectangle, query: Rectangle) -> bool:
    """Reference-point duplicate avoidance.

    A record replicated to several disjoint partitions must be reported
    exactly once: by the partition containing the *reference point* — the
    bottom-left corner of the intersection of the record's MBR with the
    query window. Every partition evaluates this test independently,
    without communication, which is the whole trick.
    """
    ref = Point(
        max(record_mbr.x1, query.x1),
        max(record_mbr.y1, query.y1),
    )
    # Half-open containment gives exactly-once ownership; partitioners
    # expand the space past the global maximum so the reference point always
    # falls strictly inside some cell's half-open range.
    return cell.contains_point_left_inclusive(ref)


def _scan_map(_key, records, ctx):
    """Map task of the full-scan range query (module-level: picklable)."""
    q = ctx.config["query"]
    for record in records:
        if _matches(record, q):
            ctx.write_output(record)


def _indexed_map(cell, records, ctx):
    """Map task of the indexed range query (module-level: picklable)."""
    q = ctx.config["query"]
    local = local_index_of(ctx) if ctx.config["use_local_index"] else None
    if local is not None:
        candidates = [e.record for e in local.search(q)]
    else:
        candidates = [r for r in records if _matches(r, q)]
    for record in candidates:
        if not _matches(record, q):
            continue
        if ctx.config["dedup"] and not _owned_by_cell(
            shape_mbr(record), cell, q
        ):
            continue
        ctx.write_output(record)


def range_query_hadoop(
    runner: JobRunner, file_name: str, query: Rectangle
) -> OperationResult:
    """Full-scan range query on a heap (or indexed) file."""
    with runner.tracer.span(
        f"op:range-hadoop({file_name})", kind="operation", file=file_name
    ) as op_span:
        job = Job(
            input_file=file_name,
            map_fn=_scan_map,
            config={"query": query},
            name=f"range-hadoop({file_name})",
        )
        result = runner.run(job)
        op_span.set("matches", len(result.output))
    return OperationResult(answer=result.output, jobs=[result], system="hadoop")


def range_query_spatial(
    runner: JobRunner,
    file_name: str,
    query: Rectangle,
    use_local_index: bool = True,
    prune: bool = True,
) -> OperationResult:
    """Indexed range query with partition pruning and duplicate avoidance.

    ``use_local_index=False`` scans surviving partitions record by record
    (the local-index ablation); ``prune=False`` disables the filter step
    (the global-index ablation).
    """
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    dedup = gindex.disjoint

    with runner.tracer.span(
        f"op:range-spatial({file_name})",
        kind="operation",
        file=file_name,
        pruning=prune,
        local_index=use_local_index,
        dedup=dedup,
    ) as op_span:
        job = Job(
            input_file=file_name,
            map_fn=_indexed_map,
            splitter=spatial_splitter(
                overlapping_filter(query) if prune else None
            ),
            reader=spatial_reader,
            config={
                "query": query,
                "use_local_index": use_local_index,
                "dedup": dedup,
            },
            name=f"range-spatial({file_name})",
        )
        result = runner.run(job)
        op_span.set("matches", len(result.output))
    return OperationResult(answer=result.output, jobs=[result])
