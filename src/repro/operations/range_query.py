"""Range query: all records intersecting a query rectangle.

The Hadoop variant scans every block. The SpatialHadoop variant prunes
non-overlapping partitions with the SpatialFileSplitter, searches each
surviving partition's local index, and applies the *reference point*
duplicate-avoidance technique when the index replicates records across
disjoint partitions.
"""

from __future__ import annotations

from repro.core.result import OperationResult
from repro.core.reader import local_index_of, spatial_reader
from repro.core.splitter import global_index_of, overlapping_filter, spatial_splitter
from repro.geometry import Point, Rectangle
from repro.index.partitioners.base import shape_mbr
from repro.mapreduce import Counter, Job, JobRunner
from repro.mapreduce.columnar import payload_of
from repro.observe.plan import PlanNode, estimate_job_cost


def _matches(record, query: Rectangle) -> bool:
    """MBR-level match: the record's MBR intersects the query window."""
    return query.intersects(shape_mbr(record))


def _owned_by_cell(record_mbr: Rectangle, cell: Rectangle, query: Rectangle) -> bool:
    """Reference-point duplicate avoidance.

    A record replicated to several disjoint partitions must be reported
    exactly once: by the partition containing the *reference point* — the
    bottom-left corner of the intersection of the record's MBR with the
    query window. Every partition evaluates this test independently,
    without communication, which is the whole trick.
    """
    ref = Point(
        max(record_mbr.x1, query.x1),
        max(record_mbr.y1, query.y1),
    )
    # Half-open containment gives exactly-once ownership; partitioners
    # expand the space past the global maximum so the reference point always
    # falls strictly inside some cell's half-open range.
    return cell.contains_point_left_inclusive(ref)


def _scan_map(_key, records, ctx):
    """Map task of the full-scan range query (module-level: picklable)."""
    q = ctx.config["query"]
    ctx.log("debug", "block-scanned", records=len(records))
    payload = payload_of(ctx.split.block, len(records))
    if payload is not None:
        # One batch mask over the block's columnar payload; the index
        # list is in record order, so output order matches the scalar
        # loop exactly.
        for i in payload.indices_in(q):
            ctx.write_output(records[i])
        return
    for record in records:
        if _matches(record, q):
            ctx.write_output(record)


def _indexed_map(cell, records, ctx):
    """Map task of the indexed range query (module-level: picklable)."""
    q = ctx.config["query"]
    ctx.log("debug", "partition-scanned", records=len(records))
    local = local_index_of(ctx) if ctx.config["use_local_index"] else None
    if local is not None:
        candidates = [e.record for e in local.search(q)]
    else:
        payload = payload_of(ctx.split.block, len(records))
        if payload is not None:
            indices = (
                payload.indices_owned_in(q, cell)
                if ctx.config["dedup"]
                else payload.indices_in(q)
            )
            for i in indices:
                ctx.write_output(records[i])
            return
        candidates = [r for r in records if _matches(r, q)]
    for record in candidates:
        if not _matches(record, q):
            continue
        if ctx.config["dedup"] and not _owned_by_cell(
            shape_mbr(record), cell, q
        ):
            continue
        ctx.write_output(record)


def range_query_hadoop(
    runner: JobRunner, file_name: str, query: Rectangle
) -> OperationResult:
    """Full-scan range query on a heap (or indexed) file."""
    with runner.tracer.span(
        f"op:range-hadoop({file_name})", kind="operation", file=file_name
    ) as op_span:
        job = Job(
            input_file=file_name,
            map_fn=_scan_map,
            config={"query": query},
            name=f"range-hadoop({file_name})",
        )
        result = runner.run(job)
        op_span.set("matches", len(result.output))
    return OperationResult(answer=result.output, jobs=[result], system="hadoop")


def range_query_spatial(
    runner: JobRunner,
    file_name: str,
    query: Rectangle,
    use_local_index: bool = True,
    prune: bool = True,
) -> OperationResult:
    """Indexed range query with partition pruning and duplicate avoidance.

    ``use_local_index=False`` scans surviving partitions record by record
    (the local-index ablation); ``prune=False`` disables the filter step
    (the global-index ablation).
    """
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    dedup = gindex.disjoint

    with runner.tracer.span(
        f"op:range-spatial({file_name})",
        kind="operation",
        file=file_name,
        pruning=prune,
        local_index=use_local_index,
        dedup=dedup,
    ) as op_span:
        job = Job(
            input_file=file_name,
            map_fn=_indexed_map,
            splitter=spatial_splitter(
                overlapping_filter(query) if prune else None
            ),
            reader=spatial_reader,
            config={
                "query": query,
                "use_local_index": use_local_index,
                "dedup": dedup,
            },
            name=f"range-spatial({file_name})",
        )
        result = runner.run(job)
        op_span.set("matches", len(result.output))
        op_span.set(
            "partitions_pruned", result.counters.get(Counter.BLOCKS_PRUNED)
        )
    return OperationResult(answer=result.output, jobs=[result])


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def estimated_matches(cells, query: Rectangle) -> int:
    """Uniform-density estimate of matching records in ``cells``.

    Each cell contributes records proportionally to how much of its
    boundary rectangle the query window covers — the textbook uniformity
    assumption, which is also what makes estimate-vs-actual error a
    useful skew signal in ANALYZE output.
    """
    total = 0.0
    for cell in cells:
        inter = cell.mbr.intersection(query)
        if inter is None:
            continue
        area = cell.mbr.area
        fraction = (inter.area / area) if area > 0 else 1.0
        total += cell.num_records * fraction
    return round(total)


def plan_range_query(
    runner: JobRunner,
    file_name: str,
    query: Rectangle,
    use_local_index: bool = True,
    prune: bool = True,
) -> PlanNode:
    """EXPLAIN plan for a range query (never reads record data)."""
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        entry = runner.fs.get(file_name)
        root = PlanNode(
            f"RangeQuery({file_name})",
            kind="operation",
            detail={"strategy": "full-scan", "window": str(query)},
            estimated={"rounds": 1},
        )
        root.add(
            PlanNode(
                f"job:range-hadoop({file_name})",
                kind="job",
                detail={"map": "scan every block", "reduce": "none"},
                estimated={
                    "blocks_read": entry.num_blocks,
                    "records_read": entry.num_records,
                    "cost": estimate_job_cost(
                        runner.cluster,
                        [len(b) for b in entry.blocks],
                    ),
                },
            )
        )
        return root

    selected = gindex.overlapping(query) if prune else list(gindex)
    dedup = gindex.disjoint
    matches = estimated_matches(selected, query)
    root = PlanNode(
        f"RangeQuery({file_name})",
        kind="operation",
        detail={
            "strategy": "indexed",
            "window": str(query),
            "technique": gindex.technique,
            "dedup": dedup,
        },
        estimated={"rounds": 1, "matches": matches},
    )
    root.add(
        PlanNode(
            "GlobalIndexFilter",
            kind="filter",
            detail={"filter": "overlapping" if prune else "every-partition"},
            estimated={
                "partitions_total": len(gindex),
                "partitions_scanned": len(selected),
                "partitions_pruned": len(gindex) - len(selected),
            },
        )
    )
    records_in = [c.num_records for c in selected]
    root.add(
        PlanNode(
            f"job:range-spatial({file_name})",
            kind="job",
            detail={
                "map": "local-index search" if use_local_index else "record scan",
                "reduce": "none",
                "dedup": "reference-point" if dedup else "off",
            },
            estimated={
                "blocks_read": len(selected),
                "records_read": sum(records_in),
                "matches": matches,
                "cost": estimate_job_cost(
                    runner.cluster,
                    records_in,
                    [estimated_matches([c], query) for c in selected],
                ),
            },
        )
    )
    return root
