"""kNN join: for every record of R, its k nearest neighbours in S.

The kNN-join literature the paper cites (Lu et al., Zhang et al.) works in
two MapReduce rounds; with SpatialHadoop's index the same structure needs
one round plus a driver-side correctness pass:

1. both inputs are spatially indexed (any technique);
2. one map task per R partition answers kNN for its records against the
   local index of every S partition within reach, visiting S partitions
   in increasing MBR-distance order and stopping once the k-th found
   distance is below the next partition's distance — the per-record
   generalisation of the single-query correctness check.

The simulator version keeps the quantity that matters (how many S blocks
each R partition touches) as counters.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, List, Tuple

from repro.core.result import OperationResult
from repro.core.reader import spatial_reader
from repro.core.splitter import global_index_of, spatial_splitter
from repro.index.rtree import RTree
from repro.mapreduce import Job, JobRunner
from repro.observe.plan import PlanNode, estimate_job_cost
from repro.operations.common import as_point

#: One join result row: (r_record, [(distance, s_record), ...] ascending).
KnnJoinRow = Tuple[Any, List[Tuple[float, Any]]]


def knn_join_spatial(
    runner: JobRunner,
    left_file: str,
    right_file: str,
    k: int,
) -> OperationResult:
    """For each record of ``left_file``, the k nearest in ``right_file``.

    Both files must be spatially indexed. Left records must be points
    (bare or Feature-wrapped); right records may be any shapes (distances
    use MBR distance, exact for points).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    fs = runner.fs
    left_index = global_index_of(fs, left_file)
    right_index = global_index_of(fs, right_file)
    if left_index is None or right_index is None:
        raise ValueError("knn join requires both inputs to be indexed")

    right_entry = fs.get(right_file)
    right_blocks = {b.metadata["cell_id"]: b for b in right_entry.blocks}
    right_cells = sorted(right_index, key=lambda c: c.cell_id)

    def map_fn(cell, records, ctx):
        kk: int = ctx.config["k"]
        blocks_touched = set()
        block_reads = 0
        for record in records:
            query = as_point(record)
            # Best-first over S partitions by MBR distance; stop once the
            # k-th found distance is below the next partition's distance.
            order = sorted(
                right_cells,
                key=lambda c: (c.mbr.min_distance_point(query), c.cell_id),
            )
            best: List[Tuple[float, int, Any]] = []  # max-heap by -distance
            counter = 0
            for s_cell in order:
                cell_dist = s_cell.mbr.min_distance_point(query)
                if len(best) >= kk and cell_dist > -best[0][0]:
                    break
                blocks_touched.add(s_cell.cell_id)
                block_reads += 1
                block = right_blocks[s_cell.cell_id]
                local: RTree = block.metadata.get("local_index")
                if local is None:  # index built without local indexes
                    local = RTree.from_shapes(block.records)
                for d, entry in local.knn(query, kk):
                    if len(best) < kk:
                        heapq.heappush(best, (-d, counter, entry.record))
                        counter += 1
                    elif d < -best[0][0]:
                        heapq.heappushpop(best, (-d, counter, entry.record))
                        counter += 1
            neighbors = sorted((-nd, rec) for nd, _, rec in best)
            ctx.write_output((record, neighbors))
        ctx.counters.increment("KNN_JOIN_S_BLOCKS", len(blocks_touched))
        ctx.counters.increment("KNN_JOIN_S_BLOCK_READS", block_reads)

    job = Job(
        input_file=left_file,
        map_fn=map_fn,
        splitter=spatial_splitter(),
        reader=spatial_reader,
        config={"k": k},
        name=f"knn-join({left_file},{right_file})",
    )
    result = runner.run(job)
    return OperationResult(answer=result.output, jobs=[result])


def knn_join_hadoop(
    runner: JobRunner,
    left_file: str,
    right_file: str,
    k: int,
) -> OperationResult:
    """Baseline block-nested kNN join over heap files.

    Every (R block, whole S) pairing is evaluated: one map task per R
    block scans the full S file. This is the quadratic baseline the
    indexed join is compared against.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    fs = runner.fs
    s_records = fs.read_records(right_file)

    def map_fn(_key, records, ctx):
        ss = ctx.config["s_records"]
        kk = ctx.config["k"]
        for record in records:
            query = as_point(record)
            scored = heapq.nsmallest(
                kk,
                (
                    (shape.mbr.min_distance_point(query), i)
                    for i, shape in enumerate(ss)
                ),
            )
            ctx.write_output(
                (record, [(d, ss[i]) for d, i in scored])
            )

    job = Job(
        input_file=left_file,
        map_fn=map_fn,
        config={"s_records": s_records, "k": k},
        name=f"knn-join-hadoop({left_file},{right_file})",
    )
    result = runner.run(job)
    return OperationResult(answer=result.output, jobs=[result], system="hadoop")


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def plan_knn_join(
    runner: JobRunner, left_file: str, right_file: str, k: int
) -> PlanNode:
    """EXPLAIN plan for the kNN join."""
    fs = runner.fs
    left_index = global_index_of(fs, left_file)
    right_index = global_index_of(fs, right_file)
    name = f"KnnJoin({left_file},{right_file})"
    if left_index is None or right_index is None:
        left_entry = fs.get(left_file)
        right_entry = fs.get(right_file)
        root = PlanNode(
            name,
            kind="operation",
            detail={"strategy": "block-nested full-scan", "k": k},
            estimated={"rounds": 1},
        )
        root.add(
            PlanNode(
                f"job:knn-join-hadoop({left_file},{right_file})",
                kind="job",
                detail={"map": "R block x whole S", "reduce": "none"},
                estimated={
                    "blocks_read": left_entry.num_blocks,
                    "records_read": left_entry.num_records,
                    "s_block_reads": left_entry.num_blocks
                    * right_entry.num_blocks,
                    "cost": estimate_job_cost(
                        runner.cluster,
                        [len(b) for b in left_entry.blocks],
                    ),
                },
            )
        )
        return root

    # Expected k-th circle radius from S's global density; each R record
    # touches the S partitions within that radius of its own partition.
    s_total = right_index.total_records
    s_area = right_index.mbr.area if len(right_index) else 0.0
    radius = (
        math.sqrt(k * s_area / (math.pi * s_total))
        if s_total and s_area > 0
        else 0.0
    )
    s_cells = list(right_index)
    s_touch = 0
    for cell in left_index:
        if cell.num_records == 0:
            continue
        reachable = sum(
            1
            for s in s_cells
            if s.num_records > 0
            and s.mbr.min_distance_rect(cell.mbr) <= radius
        )
        s_touch += max(1, reachable)
    root = PlanNode(
        name,
        kind="operation",
        detail={
            "strategy": "indexed",
            "k": k,
            "technique": f"{left_index.technique}/{right_index.technique}",
        },
        estimated={"rounds": 1, "k_radius": radius},
    )
    records_in = [c.num_records for c in left_index]
    root.add(
        PlanNode(
            f"job:knn-join({left_file},{right_file})",
            kind="job",
            detail={
                "map": "best-first over S partitions per R record",
                "reduce": "none",
            },
            estimated={
                "blocks_read": len(left_index),
                "records_read": sum(records_in),
                "s_blocks_touched": s_touch,
                "cost": estimate_job_cost(runner.cluster, records_in),
            },
        )
    )
    return root
