"""Single-machine baselines ("traditional algorithms") with timing.

These are the left-most bars of every figure in the evaluation: the plain
in-memory algorithm running on one machine over the full dataset. Each
helper returns an :class:`~repro.core.result.OperationResult` whose
``extra_seconds`` is the measured wall-clock of the computation, so the
benchmarks can put baselines and MapReduce variants in the same table.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List

from repro.core.result import OperationResult
from repro.geometry import Point, Rectangle
from repro.geometry.algorithms.closest_pair import closest_pair
from repro.geometry.algorithms.convex_hull import convex_hull
from repro.geometry.algorithms.farthest_pair import farthest_pair
from repro.geometry.algorithms.skyline import skyline
from repro.geometry.algorithms.union import polygon_union
from repro.index.partitioners.base import shape_mbr


def _timed(fn: Callable[[], Any]) -> OperationResult:
    started = time.perf_counter()
    answer = fn()
    elapsed = time.perf_counter() - started
    return OperationResult(
        answer=answer, jobs=[], extra_seconds=elapsed, system="single-machine"
    )


def range_query(records: List[Any], query: Rectangle) -> OperationResult:
    """Linear scan range query."""
    return _timed(
        lambda: [r for r in records if query.intersects(shape_mbr(r))]
    )


def knn(records: List[Any], query: Point, k: int) -> OperationResult:
    """Sort-based kNN scan."""

    def compute():
        scored = sorted(
            (shape_mbr(r).min_distance_point(query), i)
            for i, r in enumerate(records)
        )
        return [(d, records[i]) for d, i in scored[:k]]

    return _timed(compute)


def spatial_join(left: List[Any], right: List[Any]) -> OperationResult:
    """Plane-sweep join of two in-memory datasets."""
    from repro.operations.spatial_join import plane_sweep_join

    return _timed(lambda: plane_sweep_join(left, right))


def skyline_op(points: List[Point]) -> OperationResult:
    return _timed(lambda: skyline(points))


def convex_hull_op(points: List[Point]) -> OperationResult:
    return _timed(lambda: convex_hull(points))


def closest_pair_op(points: List[Point]) -> OperationResult:
    return _timed(lambda: closest_pair(points))


def farthest_pair_op(points: List[Point]) -> OperationResult:
    return _timed(lambda: farthest_pair(points))


def union_op(polygons: List[Any]) -> OperationResult:
    return _timed(lambda: polygon_union(polygons))


def voronoi_op(points: List[Point]) -> OperationResult:
    from repro.geometry.algorithms.voronoi import voronoi

    return _timed(lambda: voronoi(points))
