"""Polygon union in MapReduce.

Three variants, following the paper's progression:

* **Hadoop**: random partitioning; each map task unions its blob of
  polygons, one reducer unions the survivors. Random placement removes few
  interior edges locally, so the reducer does most of the work.
* **SpatialHadoop**: identical plan over a spatially partitioned file;
  adjacent polygons meet in the same partition, so local unions dissolve
  most interior edges and the reducer's input is small.
* **Enhanced** (map-only, disjoint index): each partition unions its
  polygons and *clips the result to the partition boundary*, writing
  boundary segments straight to the output. Every union-boundary segment
  is produced by exactly one partition, so no merge step exists at all —
  the output is a distributed set of segments.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.result import OperationResult
from repro.core.reader import spatial_reader
from repro.core.splitter import global_index_of, spatial_splitter
from repro.geometry import Point, Polygon
from repro.geometry.algorithms.clip import clip_segment
from repro.geometry.algorithms.union import polygon_union, rings_union
from repro.observe.plan import PlanNode
from repro.operations.common import plan_full_scan, plan_indexed_scan
from repro.mapreduce import Job, JobRunner

Segment = Tuple[Point, Point]


def _map_local_union(_key, records, ctx):
    # The whole local union is one multi-ring geometry (outers + holes);
    # shipping it as a unit lets the reducer re-union under even-odd
    # semantics. Each ring is emitted separately for honest shuffle counts,
    # tagged so the reducer can reassemble the geometry.
    rings = polygon_union(records)
    for ring in rings:
        ctx.emit(1, (ctx.split.block_index, ring))


def _reduce_global_union(_key, tagged_rings, ctx):
    geometries = {}
    for task_id, ring in tagged_rings:
        geometries.setdefault(task_id, []).append(ring)
    for ring in rings_union(list(geometries.values())):
        ctx.emit(1, ring)


def union_hadoop(runner: JobRunner, file_name: str) -> OperationResult:
    """Random-partitioned union with a single merging reducer."""
    job = Job(
        input_file=file_name,
        map_fn=_map_local_union,
        reduce_fn=_reduce_global_union,
        name=f"union-hadoop({file_name})",
    )
    result = runner.run(job)
    return OperationResult(answer=result.output, jobs=[result], system="hadoop")


def union_spatial(runner: JobRunner, file_name: str) -> OperationResult:
    """Spatially partitioned union; the reducer merges the local unions."""
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")

    def map_fn(cell, records, ctx):
        dedup = ctx.config["dedup"]
        polygons: List[Polygon] = []
        for poly in records:
            if dedup and not cell.contains_point_left_inclusive(
                Point(poly.mbr.x1, poly.mbr.y1)
            ):
                continue  # a replica: exactly one partition owns each polygon
            polygons.append(poly)
        for ring in polygon_union(polygons):
            ctx.emit(1, (ctx.split.block_index, ring))

    job = Job(
        input_file=file_name,
        map_fn=map_fn,
        reduce_fn=_reduce_global_union,
        splitter=spatial_splitter(),
        reader=spatial_reader,
        config={"dedup": gindex.disjoint},
        name=f"union-spatial({file_name})",
    )
    result = runner.run(job)
    return OperationResult(answer=result.output, jobs=[result])


def union_enhanced(runner: JobRunner, file_name: str) -> OperationResult:
    """Map-only union; the answer is the set of boundary segments.

    Requires a disjoint index: the clipping rule ("keep only what lies
    inside my partition") is exactly-once only when partitions tile the
    space and replicated polygons reach every partition they overlap.
    """
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    if not gindex.disjoint:
        raise ValueError("the enhanced union needs a disjoint index")

    def map_fn(cell, records, ctx):
        for ring in polygon_union(records):
            for a, b in ring.edges():
                clipped = clip_segment(a, b, cell)
                if clipped is not None:
                    ctx.write_output(clipped)

    job = Job(
        input_file=file_name,
        map_fn=map_fn,
        splitter=spatial_splitter(),
        reader=spatial_reader,
        name=f"union-enhanced({file_name})",
    )
    result = runner.run(job)
    return OperationResult(answer=result.output, jobs=[result])


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def plan_union(
    runner: JobRunner, file_name: str, enhanced: bool = False
) -> PlanNode:
    """EXPLAIN plan for the polygon-union operation."""
    gindex = global_index_of(runner.fs, file_name)
    op_name = f"Union({file_name})"
    if enhanced:
        if gindex is None:
            raise ValueError(f"{file_name!r} is not spatially indexed")
        plan = plan_indexed_scan(
            runner,
            op_name,
            f"job:union-enhanced({file_name})",
            gindex,
            list(gindex),
            map_desc="local union clipped to partition boundary",
            detail={"variant": "enhanced (map-only)"},
        )
        if not gindex.disjoint:
            plan.detail["note"] = "boundary clipping requires a disjoint index"
        return plan
    if gindex is None:
        return plan_full_scan(
            runner,
            file_name,
            op_name,
            f"job:union-hadoop({file_name})",
            map_desc="per-block local union",
            reduce_desc="union of survivors",
            shuffle_per_block=1,
            detail={"variant": "random partitioning"},
        )
    # Spatially partitioned: adjacent polygons meet in the same partition,
    # so each partition ships roughly one dissolved blob of rings.
    return plan_indexed_scan(
        runner,
        op_name,
        f"job:union-spatial({file_name})",
        gindex,
        list(gindex),
        map_desc="per-partition local union",
        reduce_desc="union of local unions",
        shuffle_records=len(gindex),
        detail={"variant": "spatial partitioning"},
    )
