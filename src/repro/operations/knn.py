"""k-nearest-neighbour query.

The Hadoop variant scans the whole file: every map task computes its local
top-k and one reducer merges them. The SpatialHadoop variant reads only the
partition containing the query point, then runs the *correctness check*:
if the circle through the k-th answer spills over the partition boundary,
a second round processes the other partitions the circle overlaps. The loop
provably terminates and in practice takes one round for most queries —
exactly the behaviour experiment E3 records.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Tuple

from repro.core.result import OperationResult
from repro.core.reader import local_index_of, spatial_reader
from repro.core.splitter import global_index_of, spatial_splitter
from repro.geometry import Point, Rectangle
from repro.geometry import vectorized
from repro.index.partitioners.base import shape_mbr
from repro.mapreduce import Counter, Job, JobRunner
from repro.mapreduce.columnar import payload_of
from repro.observe.plan import PlanNode, estimate_job_cost

#: kNN answers are (distance, record) pairs sorted by distance.
Neighbors = List[Tuple[float, object]]


def _local_topk(records, query: Point, k: int, payload=None) -> Neighbors:
    """Top-k of a record list by MBR distance (exact for points).

    Candidates are ranked by ``(squared distance, record index)`` —
    squared distances round identically in the scalar loop and the batch
    kernels, and the index tie-break makes the selected set independent
    of execution mode. The distances in the returned pairs are true
    distances, recomputed with ``math.hypot`` on the winners only.
    """
    if payload is not None:
        top = vectorized.topk_by_distance(payload.distance_sq_to(query), k)
    else:
        mbr_of = shape_mbr  # bound to locals: this loop dominates kNN scans
        dsq_of = Rectangle.min_distance_sq_point
        dsq = [dsq_of(mbr_of(r), query) for r in records]
        top = heapq.nsmallest(k, range(len(records)), key=lambda i: (dsq[i], i))
    return [
        (shape_mbr(records[i]).min_distance_point(query), records[i])
        for i in top
    ]


def _merge_topk(partials: List[Neighbors], k: int) -> Neighbors:
    merged: Neighbors = []
    for partial in partials:
        merged.extend(partial)
    merged.sort(key=lambda pair: pair[0])
    return merged[:k]


def _knn_scan_map(_key, records, ctx):
    """Per-block local top-k (module-level: picklable)."""
    payload = payload_of(ctx.split.block, len(records))
    top = _local_topk(records, ctx.config["query"], ctx.config["k"], payload)
    for pair in top:
        ctx.emit(1, pair)


def _knn_merge_reduce(_key, pairs, ctx):
    """Merge the local top-k lists (module-level: picklable)."""
    for pair in _merge_topk([pairs], ctx.config["k"]):
        ctx.emit(1, pair)


def _knn_indexed_map(_cell, records, ctx):
    """Per-partition top-k via the local index (module-level: picklable)."""
    local = local_index_of(ctx) if ctx.config["use_local_index"] else None
    if local is not None:
        top = [
            (d, e.record)
            for d, e in local.knn(ctx.config["query"], ctx.config["k"])
        ]
    else:
        payload = payload_of(ctx.split.block, len(records))
        top = _local_topk(
            records, ctx.config["query"], ctx.config["k"], payload
        )
    for pair in top:
        ctx.write_output(pair)


def knn_hadoop(
    runner: JobRunner, file_name: str, query: Point, k: int
) -> OperationResult:
    """Full-scan kNN: local top-k per block, merged by one reducer."""
    if k <= 0:
        raise ValueError("k must be positive")

    job = Job(
        input_file=file_name,
        map_fn=_knn_scan_map,
        reduce_fn=_knn_merge_reduce,
        config={"query": query, "k": k},
        name=f"knn-hadoop({file_name})",
    )
    result = runner.run(job)
    return OperationResult(answer=result.output, jobs=[result], system="hadoop")


def knn_spatial(
    runner: JobRunner,
    file_name: str,
    query: Point,
    k: int,
    use_local_index: bool = True,
) -> OperationResult:
    """Indexed kNN with the correctness-check round protocol."""
    if k <= 0:
        raise ValueError("k must be positive")
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")

    tracer = runner.tracer

    def run_round(round_index: int, cell_ids) -> "JobResult":  # noqa: F821
        with tracer.span(
            f"knn:round-{round_index}",
            kind="round",
            round=round_index,
            cells=sorted(cell_ids),
        ) as round_span:
            job = Job(
                input_file=file_name,
                map_fn=_knn_indexed_map,
                splitter=spatial_splitter(
                    lambda gi: [c for c in gi if c.cell_id in cell_ids]
                ),
                reader=spatial_reader,
                config={
                    "query": query, "k": k, "use_local_index": use_local_index
                },
                name=f"knn-spatial({file_name})",
            )
            result = runner.run(job)
            round_span.set("candidates", len(result.output))
        runner.round_boundary("knn-spatial", round_index)
        return result

    with tracer.span(
        f"op:knn-spatial({file_name})", kind="operation", file=file_name, k=k
    ) as op_span:
        # Round 1: the partition containing (or nearest to) the query point.
        first = gindex.nearest_cell(query)
        if first is None:
            op_span.set("rounds", 0)
            return OperationResult(answer=[], jobs=[])
        processed = {first.cell_id}
        jobs = [run_round(1, processed)]
        answer = _merge_topk([jobs[0].output], k)

        # Correctness rounds: grow until the k-th circle stays inside the
        # processed region. With fewer than k answers the radius is
        # unbounded.
        while True:
            if len(answer) >= k:
                radius = answer[-1][0]
                circle_mbr = Rectangle(
                    query.x - radius, query.y - radius,
                    query.x + radius, query.y + radius,
                )
                needed = {
                    c.cell_id
                    for c in gindex
                    if c.mbr.min_distance_point(query) <= radius
                    and c.mbr.intersects(circle_mbr)
                }
            else:
                needed = {c.cell_id for c in gindex if c.num_records > 0}
            missing = needed - processed
            if not missing:
                break
            processed |= missing
            round_result = run_round(len(jobs) + 1, missing)
            jobs.append(round_result)
            answer = _merge_topk([answer, round_result.output], k)
        op_span.set("rounds", len(jobs))
        op_span.set(
            "partitions_pruned",
            sum(j.counters.get(Counter.BLOCKS_PRUNED) for j in jobs),
        )
    return OperationResult(answer=answer, jobs=jobs)


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def estimate_knn_radius(cell, k: int) -> float:
    """Expected k-th neighbour distance under uniform density.

    With ``n`` points uniformly spread over the cell's area ``A``, the
    circle holding the k nearest neighbours has expected area
    ``k * A / n``, hence radius ``sqrt(k * A / (pi * n))``.
    """
    if cell.num_records <= 0 or cell.mbr.area <= 0:
        return math.inf
    return math.sqrt(k * cell.mbr.area / (math.pi * cell.num_records))


def plan_knn(
    runner: JobRunner, file_name: str, query: Point, k: int
) -> PlanNode:
    """EXPLAIN plan for kNN, including the predicted round protocol."""
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        entry = runner.fs.get(file_name)
        root = PlanNode(
            f"Knn({file_name})",
            kind="operation",
            detail={"strategy": "full-scan", "point": str(query), "k": k},
            estimated={"rounds": 1},
        )
        shuffle = k * entry.num_blocks
        root.add(
            PlanNode(
                f"job:knn-hadoop({file_name})",
                kind="job",
                detail={"map": "per-block top-k", "reduce": "merge top-k"},
                estimated={
                    "blocks_read": entry.num_blocks,
                    "records_read": entry.num_records,
                    "shuffle_records": shuffle,
                    "cost": estimate_job_cost(
                        runner.cluster,
                        [len(b) for b in entry.blocks],
                        reduce_records_in=[shuffle],
                        shuffle_records=shuffle,
                    ),
                },
            )
        )
        return root

    root = PlanNode(
        f"Knn({file_name})",
        kind="operation",
        detail={
            "strategy": "indexed",
            "point": str(query),
            "k": k,
            "technique": gindex.technique,
        },
    )
    first = gindex.nearest_cell(query)
    if first is None:
        root.detail["note"] = "empty index: no rounds needed"
        root.estimated = {"rounds": 0}
        return root

    round1 = root.add(
        PlanNode(
            "knn:round-1",
            kind="round",
            detail={"cells": [first.cell_id], "reason": "nearest partition"},
            estimated={"partitions_scanned": 1},
        )
    )
    round1.add(
        PlanNode(
            f"job:knn-spatial({file_name})",
            kind="job",
            detail={"map": "local-index kNN", "reduce": "none"},
            estimated={
                "blocks_read": 1,
                "records_read": first.num_records,
                "cost": estimate_job_cost(
                    runner.cluster, [first.num_records], [k]
                ),
            },
        )
    )

    # Correctness-check prediction: the k-th circle under uniform density.
    # When it spills past partitions other than the first, a second round
    # must read them; E3 shows one round suffices for most queries.
    radius = estimate_knn_radius(first, k)
    if first.num_records >= k and radius < math.inf:
        extra = [
            c
            for c in gindex
            if c.cell_id != first.cell_id
            and c.num_records > 0
            and c.mbr.min_distance_point(query) <= radius
        ]
    else:
        extra = [
            c
            for c in gindex
            if c.cell_id != first.cell_id and c.num_records > 0
        ]
    root.estimated = {
        "rounds": 1 if not extra else 2,
        "k_radius": radius if radius < math.inf else -1.0,
    }
    if extra:
        round2 = root.add(
            PlanNode(
                "knn:round-2",
                kind="round",
                detail={
                    "cells": sorted(c.cell_id for c in extra),
                    "reason": "k-th circle may spill past round-1 partitions",
                },
                estimated={"partitions_scanned": len(extra)},
            )
        )
        records_in = [c.num_records for c in extra]
        round2.add(
            PlanNode(
                f"job:knn-spatial({file_name})",
                kind="job",
                detail={"map": "local-index kNN", "reduce": "none"},
                estimated={
                    "blocks_read": len(extra),
                    "records_read": sum(records_in),
                    "cost": estimate_job_cost(
                        runner.cluster, records_in, [k] * len(extra)
                    ),
                },
            )
        )
    return root
