"""Farthest pair (diameter) in MapReduce.

* **Hadoop**: local convex hull per block; one reducer computes the hull of
  the local hulls and runs rotating calipers — correct because the two
  farthest points lie on the global hull, which is the hull of the union of
  the local hulls.
* **SpatialHadoop**: the filter step works on *pairs of partitions*. The
  tight MBRs give a lower bound (minimality: a record touches each side)
  and an upper bound (corner-to-corner) on the farthest pair of every cell
  pair; a pair whose upper bound is below the greatest lower bound can
  never win and is pruned. Each surviving pair is processed by one map
  task; the reducer keeps the maximum.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.result import OperationResult
from repro.core.splitter import global_index_of
from repro.geometry.algorithms.convex_hull import convex_hull
from repro.geometry.algorithms.farthest_pair import farthest_pair_on_hull
from repro.observe.plan import PlanNode, estimate_job_cost
from repro.operations.common import as_points, plan_full_scan
from repro.index.global_index import GlobalIndex
from repro.mapreduce import Block, Job, JobRunner
from repro.mapreduce.types import InputSplit


def _map_local_hull(_key, records, ctx):
    for p in convex_hull(as_points(records)):
        ctx.emit(1, p)


def farthest_pair_hadoop(runner: JobRunner, file_name: str) -> OperationResult:
    """Unindexed farthest pair via hull-of-hulls."""

    def reduce_fn(_key, points, ctx):
        pair = farthest_pair_on_hull(convex_hull(points))
        if pair is not None:
            ctx.emit(1, pair)

    job = Job(
        input_file=file_name,
        map_fn=_map_local_hull,
        combine_fn=lambda k, pts, ctx: [ctx.emit(1, p) for p in convex_hull(pts)],
        reduce_fn=reduce_fn,
        name=f"farthest-hadoop({file_name})",
    )
    result = runner.run(job)
    answer = result.output[0] if result.output else None
    return OperationResult(answer=answer, jobs=[result], system="hadoop")


def select_cell_pairs(gindex: GlobalIndex) -> List[Tuple[int, int]]:
    """The two-pass pair filter: keep pairs whose upper bound >= GLB."""
    cells = [c for c in gindex if c.num_records > 0]
    glb = 0.0
    for i in range(len(cells)):
        for j in range(i, len(cells)):
            a, b = cells[i].tight_mbr, cells[j].tight_mbr
            if i == j:
                # A single minimal MBR guarantees a pair spanning its
                # longer side (one record on each of the two far edges).
                lower = max(a.width, a.height) if cells[i].num_records >= 2 else 0.0
            else:
                lower = a.farthest_pair_lower_bound(b)
            glb = max(glb, lower)
    selected: List[Tuple[int, int]] = []
    for i in range(len(cells)):
        for j in range(i, len(cells)):
            a, b = cells[i].tight_mbr, cells[j].tight_mbr
            upper = a.max_distance_rect(b)
            if upper >= glb:
                selected.append((cells[i].cell_id, cells[j].cell_id))
    return selected


def farthest_pair_spatial(runner: JobRunner, file_name: str) -> OperationResult:
    """Indexed farthest pair with the cell-pair dominance filter."""
    fs = runner.fs
    gindex = global_index_of(fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")

    entry = fs.get(file_name)
    blocks = {b.metadata["cell_id"]: b for b in entry.blocks}
    pairs = select_cell_pairs(gindex)

    pair_blocks: List[Block] = []
    for left_id, right_id in pairs:
        records = list(blocks[left_id].records)
        if right_id != left_id:
            records = records + list(blocks[right_id].records)
        pair_blocks.append(
            Block(records=records, metadata={"pair": (left_id, right_id)})
        )
    pairs_file = f"__fp_pairs__{file_name}"
    if fs.exists(pairs_file):
        fs.delete(pairs_file)
    fs.create_file_from_blocks(pairs_file, pair_blocks)

    def pair_splitter(fs_, job_):
        entry_ = fs_.get(job_.input_file)
        return [
            InputSplit(
                file=job_.input_file,
                block_index=i,
                block=block,
                key=block.metadata["pair"],
            )
            for i, block in enumerate(entry_.blocks)
        ]

    def map_fn(_pair, records, ctx):
        pair = farthest_pair_on_hull(convex_hull(as_points(records)))
        if pair is not None:
            ctx.emit(1, pair)

    def reduce_fn(_key, candidate_pairs, ctx):
        best = max(candidate_pairs, key=lambda pr: pr[0].distance_sq(pr[1]))
        ctx.emit(1, best)

    job = Job(
        input_file=pairs_file,
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        splitter=pair_splitter,
        name=f"farthest-spatial({file_name})",
    )
    try:
        result = runner.run(job)
    finally:
        fs.delete(pairs_file)
    answer = result.output[0] if result.output else None
    return OperationResult(answer=answer, jobs=[result])


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def plan_farthest_pair(runner: JobRunner, file_name: str) -> PlanNode:
    """EXPLAIN plan for the farthest-pair operation."""
    from repro.operations.skyline import est_summary_size

    gindex = global_index_of(runner.fs, file_name)
    op_name = f"FarthestPair({file_name})"
    if gindex is None:
        entry = runner.fs.get(file_name)
        return plan_full_scan(
            runner,
            file_name,
            op_name,
            f"job:farthest-hadoop({file_name})",
            map_desc="per-block local hull",
            reduce_desc="rotating calipers on hull of hulls",
            shuffle_per_block=est_summary_size(
                entry.num_records // max(1, entry.num_blocks)
            ),
        )

    cells = {c.cell_id: c for c in gindex}
    nonempty = sum(1 for c in gindex if c.num_records > 0)
    pairs = select_cell_pairs(gindex)
    pairs_total = nonempty * (nonempty + 1) // 2
    root = PlanNode(
        op_name,
        kind="operation",
        detail={"strategy": "indexed", "technique": gindex.technique},
        estimated={"rounds": 1},
    )
    root.add(
        PlanNode(
            "CellPairFilter",
            kind="filter",
            detail={"filter": "upper-bound < greatest lower bound"},
            estimated={
                "pairs_total": pairs_total,
                "pairs_scanned": len(pairs),
                "pairs_pruned": pairs_total - len(pairs),
            },
        )
    )
    records_in = []
    for left_id, right_id in pairs:
        n = cells[left_id].num_records
        if right_id != left_id:
            n += cells[right_id].num_records
        records_in.append(n)
    root.add(
        PlanNode(
            f"job:farthest-spatial({file_name})",
            kind="job",
            detail={
                "map": "hull + calipers per cell pair",
                "reduce": "max over pair candidates",
            },
            estimated={
                "blocks_read": len(pairs),
                "records_read": sum(records_in),
                "shuffle_records": len(pairs),
                "cost": estimate_job_cost(
                    runner.cluster,
                    records_in,
                    reduce_records_in=[len(pairs)] if pairs else [],
                    shuffle_records=len(pairs),
                ),
            },
        )
    )
    return root
