"""Voronoi-diagram construction in MapReduce.

The operations-layer flagship of the later SpatialHadoop work: the output
is several times larger than the input, so the merge step must not see all
of it. Each partition computes its local Voronoi diagram and applies the
*pruning rule* (Corollary 1): a closed region whose dangerous zone — the
union of circles centred at its Voronoi vertices passing through the site
— lies entirely inside the partition boundary is *safe*: no site in any
other partition can change it, so it is flushed straight to the output.

Only the non-safe sites, plus their local Voronoi neighbours (the support
set that provably determines the non-safe cells), are shipped to the
merge step, which computes one Voronoi diagram over the survivors and
emits the regions of the non-safe sites. The paper performs the merge in
vertical then horizontal rounds; this reproduction merges in one round,
which preserves the algorithm's structure (local VD -> prune safe ->
merge survivors) and its headline metric: the fraction of sites pruned
before the merge.

Requires a disjoint index on points, for the same reason as closest pair:
the safety test assumes no foreign site can appear inside the partition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.result import OperationResult
from repro.core.reader import spatial_reader
from repro.core.splitter import global_index_of, spatial_splitter
from repro.geometry import Point
from repro.geometry.algorithms.voronoi import VoronoiRegion, voronoi
from repro.observe.plan import PlanNode
from repro.operations.common import as_points, plan_indexed_scan
from repro.mapreduce import Job, JobRunner


@dataclass
class VoronoiResult:
    """The distributed Voronoi diagram.

    ``final_regions`` were produced (and early-flushed) by the local VD
    step; ``merged_regions`` by the merge step. Together they hold exactly
    one region per input site.
    """

    final_regions: List[VoronoiRegion] = field(default_factory=list)
    merged_regions: List[VoronoiRegion] = field(default_factory=list)

    @property
    def regions(self) -> List[VoronoiRegion]:
        return self.final_regions + self.merged_regions

    def by_site(self) -> Dict[Point, VoronoiRegion]:
        return {r.site: r for r in self.regions}

    @property
    def pruned_fraction(self) -> float:
        """Fraction of sites finalised before the merge (paper: ~99%)."""
        total = len(self.final_regions) + len(self.merged_regions)
        return len(self.final_regions) / total if total else 0.0


def voronoi_spatial(runner: JobRunner, file_name: str) -> OperationResult:
    """Distributed Voronoi diagram over a disjointly indexed point file."""
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    if not gindex.disjoint:
        raise ValueError("the Voronoi pruning rule needs a disjoint index")

    def map_fn(cell, records, ctx):
        sites = as_points(records)
        if len(set(sites)) != len(sites):
            raise ValueError("Voronoi construction requires distinct sites")
        if len(sites) < 3:
            for s in sites:
                ctx.emit(1, ("nonsafe", s))
            return
        local = voronoi(sites)
        neighbors = local.neighbors_of()
        nonsafe: List[int] = []
        for i, region in enumerate(local.regions):
            if region.dangerous_zone_inside(cell):
                ctx.write_output(region)  # safe: final, early-flushed
            else:
                nonsafe.append(i)
        support = set()
        for i in nonsafe:
            support.update(neighbors[i])
        support.difference_update(nonsafe)
        for i in nonsafe:
            ctx.emit(1, ("nonsafe", sites[i]))
        for i in support:
            ctx.emit(1, ("support", sites[i]))

    def reduce_fn(_key, tagged, ctx):
        nonsafe = {s for tag, s in tagged if tag == "nonsafe"}
        all_sites = {s for _tag, s in tagged}
        if not all_sites:
            return
        if len(all_sites) < 3:
            for s in nonsafe:
                ctx.emit(1, VoronoiRegion(site=s, closed=False))
            return
        merged = voronoi(sorted(all_sites))
        for region in merged.regions:
            if region.site in nonsafe:
                ctx.emit(1, region)

    job = Job(
        input_file=file_name,
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        splitter=spatial_splitter(),
        reader=spatial_reader,
        name=f"voronoi({file_name})",
    )
    result = runner.run(job)
    # The runtime appends map-flushed records first and reducer output
    # last; the reduce-output counter locates the boundary.
    answer = VoronoiResult()
    reduce_count = result.counters["REDUCE_OUTPUT_RECORDS"]
    if reduce_count:
        answer.final_regions = result.output[:-reduce_count]
        answer.merged_regions = result.output[-reduce_count:]
    else:
        answer.final_regions = list(result.output)
    return OperationResult(answer=answer, jobs=[result])


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def plan_voronoi(runner: JobRunner, file_name: str) -> PlanNode:
    """EXPLAIN plan for the Voronoi operation.

    Non-safe sites live near partition boundaries, so the shuffle (and the
    headline pruned fraction) is estimated with the same boundary-band
    argument as the closest-pair candidate buffer: ~4*sqrt(n) per cell.
    """
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    shuffle = sum(
        min(c.num_records, round(4 * math.sqrt(c.num_records)))
        for c in gindex
    )
    plan = plan_indexed_scan(
        runner,
        f"Voronoi({file_name})",
        f"job:voronoi({file_name})",
        gindex,
        list(gindex),
        map_desc="local VD, early-flush safe regions",
        reduce_desc="merge non-safe + support sites",
        shuffle_records=shuffle,
    )
    total = gindex.total_records
    plan.estimated["pruned_fraction"] = (
        round(1.0 - shuffle / total, 4) if total else 0.0
    )
    if not gindex.disjoint:
        plan.detail["note"] = "the safety test requires a disjoint index"
    return plan
