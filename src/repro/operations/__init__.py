"""SpatialHadoop's operations layer.

Every operation comes in (at least) two flavours, matching the papers:

* a **Hadoop** variant that runs on a non-indexed heap file — the baseline
  every figure compares against;
* a **SpatialHadoop** variant that exploits the global index through the
  SpatialFileSplitter (the *filter* step), the local indexes through the
  SpatialRecordReader (the *local processing* step), and, where the
  algorithm allows it, a *pruning* step that early-flushes final results.

Operations return :class:`~repro.core.result.OperationResult` carrying both
the answer and the simulated cluster cost, so benchmarks can print the
paper's tables directly. Single-machine baselines live in
:mod:`repro.operations.single_machine`.
"""

from repro.operations.range_count import (
    plan_range_count,
    range_count_hadoop,
    range_count_spatial,
)
from repro.operations.range_query import (
    plan_range_query,
    range_query_hadoop,
    range_query_spatial,
)
from repro.operations.stats import FileStats, file_stats
from repro.operations.knn import knn_hadoop, knn_spatial, plan_knn
from repro.operations.knn_join import (
    knn_join_hadoop,
    knn_join_spatial,
    plan_knn_join,
)
from repro.operations.spatial_join import (
    plan_spatial_join,
    spatial_join_distributed,
    spatial_join_sjmr,
)
from repro.operations.skyline import (
    plan_skyline,
    skyline_hadoop,
    skyline_output_sensitive,
    skyline_spatial,
)
from repro.operations.convex_hull import (
    convex_hull_hadoop,
    convex_hull_spatial,
    plan_convex_hull,
)
from repro.operations.closest_pair import (
    closest_pair_spatial,
    plan_closest_pair,
)
from repro.operations.farthest_pair import (
    farthest_pair_hadoop,
    farthest_pair_spatial,
    plan_farthest_pair,
)
from repro.operations.union import (
    plan_union,
    union_enhanced,
    union_hadoop,
    union_spatial,
)
from repro.operations.voronoi import VoronoiResult, plan_voronoi, voronoi_spatial
from repro.operations import single_machine

__all__ = [
    "FileStats",
    "closest_pair_spatial",
    "file_stats",
    "convex_hull_hadoop",
    "convex_hull_spatial",
    "farthest_pair_hadoop",
    "farthest_pair_spatial",
    "knn_hadoop",
    "knn_join_hadoop",
    "knn_join_spatial",
    "knn_spatial",
    "plan_closest_pair",
    "plan_convex_hull",
    "plan_farthest_pair",
    "plan_knn",
    "plan_knn_join",
    "plan_range_count",
    "plan_range_query",
    "plan_skyline",
    "plan_spatial_join",
    "plan_union",
    "plan_voronoi",
    "range_count_hadoop",
    "range_count_spatial",
    "range_query_hadoop",
    "range_query_spatial",
    "single_machine",
    "skyline_hadoop",
    "skyline_output_sensitive",
    "skyline_spatial",
    "spatial_join_distributed",
    "spatial_join_sjmr",
    "union_enhanced",
    "union_hadoop",
    "union_spatial",
    "VoronoiResult",
    "voronoi_spatial",
]
