"""Aggregate range query: COUNT of records in a window.

The aggregate variant of the range query matters because it can use the
combiner: each map task emits one partial count instead of the matching
records, so the shuffle is O(blocks) regardless of selectivity — the
cheapest possible spatial query and a common building block (heat maps,
selectivity estimation for query planning).
"""

from __future__ import annotations

from repro.core.result import OperationResult
from repro.core.reader import local_index_of, spatial_reader
from repro.core.splitter import global_index_of, spatial_splitter
from repro.geometry import Rectangle
from repro.index.partitioners.base import shape_mbr
from repro.mapreduce import Counter, Job, JobRunner
from repro.mapreduce.columnar import payload_of
from repro.observe.plan import PlanNode, estimate_job_cost
from repro.operations.range_query import _matches, _owned_by_cell, estimated_matches


def _count_scan_map(_key, records, ctx):
    """Per-block matching-record count (module-level: picklable)."""
    q = ctx.config["query"]
    payload = payload_of(ctx.split.block, len(records))
    if payload is not None:
        ctx.emit(1, len(payload.indices_in(q)))
        return
    ctx.emit(1, sum(1 for r in records if _matches(r, q)))


def _count_reduce(_key, partials, ctx):
    """Sum the per-task partial counts (module-level: picklable)."""
    ctx.emit(1, sum(partials))


def _count_indexed_map(cell, records, ctx):
    """Per-partition count with dedup ownership (module-level: picklable)."""
    q = ctx.config["query"]
    local = local_index_of(ctx)
    if local is not None:
        candidates = [e.record for e in local.search(q)]
    else:
        payload = payload_of(ctx.split.block, len(records))
        if payload is not None:
            indices = (
                payload.indices_owned_in(q, cell)
                if ctx.config["dedup"]
                else payload.indices_in(q)
            )
            ctx.emit(1, len(indices))
            return
        candidates = [r for r in records if _matches(r, q)]
    count = 0
    for record in candidates:
        if not _matches(record, q):
            continue
        if ctx.config["dedup"] and not _owned_by_cell(
            shape_mbr(record), cell, q
        ):
            continue
        count += 1
    ctx.emit(1, count)


def range_count_hadoop(
    runner: JobRunner, file_name: str, query: Rectangle
) -> OperationResult:
    """Full-scan COUNT with a combiner-style single partial per block."""
    job = Job(
        input_file=file_name,
        map_fn=_count_scan_map,
        reduce_fn=_count_reduce,
        config={"query": query},
        name=f"range-count-hadoop({file_name})",
    )
    result = runner.run(job)
    count = result.output[0] if result.output else 0
    return OperationResult(answer=count, jobs=[result], system="hadoop")


def range_count_spatial(
    runner: JobRunner, file_name: str, query: Rectangle
) -> OperationResult:
    """Indexed COUNT with a fast path for fully-covered partitions.

    A partition whose boundary lies entirely inside the query window
    contributes *all* its records (minus replicas it does not own): for
    non-replicated indexes its count comes straight from the global index
    without reading the block at all — the aggregate analogue of the
    filter step.
    """
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    dedup = gindex.disjoint

    covered = 0
    boundary_cells = set()
    for cell in gindex.overlapping(query):
        if not dedup and query.contains_rect(cell.mbr):
            covered += cell.num_records  # free: counted from the index
        else:
            boundary_cells.add(cell.cell_id)

    with runner.tracer.span(
        f"op:range-count({file_name})",
        kind="operation",
        file=file_name,
        covered_records=covered,
    ) as op_span:
        job = Job(
            input_file=file_name,
            map_fn=_count_indexed_map,
            reduce_fn=_count_reduce,
            splitter=spatial_splitter(
                lambda gi: [c for c in gi if c.cell_id in boundary_cells]
            ),
            reader=spatial_reader,
            config={"query": query, "dedup": dedup},
            name=f"range-count-spatial({file_name})",
        )
        result = runner.run(job)
        partial = result.output[0] if result.output else 0
        op_span.set("count", covered + partial)
        op_span.set(
            "partitions_pruned", result.counters.get(Counter.BLOCKS_PRUNED)
        )
    return OperationResult(answer=covered + partial, jobs=[result])


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def plan_range_count(
    runner: JobRunner, file_name: str, query: Rectangle
) -> PlanNode:
    """EXPLAIN plan for a COUNT query, including the covered fast path."""
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        entry = runner.fs.get(file_name)
        root = PlanNode(
            f"RangeCount({file_name})",
            kind="operation",
            detail={"strategy": "full-scan", "window": str(query)},
            estimated={"rounds": 1},
        )
        root.add(
            PlanNode(
                f"job:range-count-hadoop({file_name})",
                kind="job",
                detail={"map": "per-block count", "reduce": "sum partials"},
                estimated={
                    "blocks_read": entry.num_blocks,
                    "records_read": entry.num_records,
                    "shuffle_records": entry.num_blocks,
                    "cost": estimate_job_cost(
                        runner.cluster,
                        [len(b) for b in entry.blocks],
                        reduce_records_in=[entry.num_blocks],
                        shuffle_records=entry.num_blocks,
                    ),
                },
            )
        )
        return root

    dedup = gindex.disjoint
    overlapping = gindex.overlapping(query)
    covered = [
        c for c in overlapping if not dedup and query.contains_rect(c.mbr)
    ]
    covered_ids = {c.cell_id for c in covered}
    boundary = [c for c in overlapping if c.cell_id not in covered_ids]
    covered_records = sum(c.num_records for c in covered)
    est_count = covered_records + estimated_matches(boundary, query)
    root = PlanNode(
        f"RangeCount({file_name})",
        kind="operation",
        detail={
            "strategy": "indexed",
            "window": str(query),
            "technique": gindex.technique,
        },
        estimated={"rounds": 1, "count": est_count},
    )
    root.add(
        PlanNode(
            "GlobalIndexFilter",
            kind="filter",
            detail={"filter": "overlapping + covered fast path"},
            estimated={
                "partitions_total": len(gindex),
                "partitions_scanned": len(boundary),
                "partitions_pruned": len(gindex) - len(boundary),
                "partitions_covered": len(covered),
                "covered_records": covered_records,
            },
        )
    )
    records_in = [c.num_records for c in boundary]
    root.add(
        PlanNode(
            f"job:range-count-spatial({file_name})",
            kind="job",
            detail={"map": "per-partition count", "reduce": "sum partials"},
            estimated={
                "blocks_read": len(boundary),
                "records_read": sum(records_in),
                "shuffle_records": len(boundary),
                "cost": estimate_job_cost(
                    runner.cluster,
                    records_in,
                    reduce_records_in=[len(boundary)] if boundary else [],
                    shuffle_records=len(boundary),
                ),
            },
        )
    )
    return root
