"""Closest pair in SpatialHadoop.

The algorithm needs a *disjoint* index on points: each partition computes
its local closest pair at distance delta, keeps its two endpoints plus every
point within delta of the partition boundary (the candidate buffer), and
prunes everything else. One reducer runs the closest-pair algorithm over
the survivors. Disjointness is what makes the pruning safe: a pruned point
is more than delta away from anything outside its cell, and something
within delta inside its cell survives with it.

The papers argue a Hadoop variant is impractical (random partitioning makes
local pruning unsound); the single-machine baseline lives in
:mod:`repro.operations.single_machine`.
"""

from __future__ import annotations

import math

from repro.core.result import OperationResult
from repro.core.reader import spatial_reader
from repro.core.splitter import global_index_of, spatial_splitter
from repro.geometry.algorithms.closest_pair import closest_pair
from repro.observe.plan import PlanNode
from repro.operations.common import as_points, plan_indexed_scan
from repro.mapreduce import Job, JobRunner


def closest_pair_spatial(runner: JobRunner, file_name: str) -> OperationResult:
    """Closest pair over a disjointly indexed point file."""
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    if not gindex.disjoint:
        raise ValueError("the closest-pair pruning step needs a disjoint index")

    def map_fn(cell, records, ctx):
        records = as_points(records)
        pair = closest_pair(records)
        if pair is None:
            # Zero or one point: nothing can be pruned safely.
            for p in records:
                ctx.emit(1, p)
            return
        delta = pair[0].distance(pair[1])
        ctx.emit(1, pair[0])
        ctx.emit(1, pair[1])
        for p in records:
            if p in pair:
                continue
            near_boundary = (
                p.x - cell.x1 < delta
                or cell.x2 - p.x < delta
                or p.y - cell.y1 < delta
                or cell.y2 - p.y < delta
            )
            if near_boundary:
                ctx.emit(1, p)

    def reduce_fn(_key, points, ctx):
        pair = closest_pair(points)
        if pair is not None:
            ctx.emit(1, pair)

    job = Job(
        input_file=file_name,
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        splitter=spatial_splitter(),
        reader=spatial_reader,
        name=f"closest-pair({file_name})",
    )
    result = runner.run(job)
    runner.round_boundary("closest-pair", 1)
    answer = result.output[0] if result.output else None
    return OperationResult(answer=answer, jobs=[result])


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def _est_boundary_candidates(num_records: int) -> int:
    """Expected candidate-buffer size of a partition.

    With n uniform points, the local closest-pair distance delta scales
    like sqrt(A/n); the boundary band of width delta then holds roughly
    perimeter * delta * density = 4 * sqrt(n) points (plus the pair).
    """
    if num_records <= 1:
        return num_records
    return min(num_records, 2 + round(4 * math.sqrt(num_records)))


def plan_closest_pair(runner: JobRunner, file_name: str) -> PlanNode:
    """EXPLAIN plan for the closest-pair operation (disjoint index only)."""
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    selected = list(gindex)
    plan = plan_indexed_scan(
        runner,
        f"ClosestPair({file_name})",
        f"job:closest-pair({file_name})",
        gindex,
        selected,
        map_desc="local closest pair + boundary buffer",
        reduce_desc="closest pair of survivors",
        shuffle_records=sum(
            _est_boundary_candidates(c.num_records) for c in selected
        ),
    )
    if not gindex.disjoint:
        plan.detail["note"] = "pruning requires a disjoint index"
    return plan
