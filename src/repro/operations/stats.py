"""File statistics: the ``info`` operation.

Several drivers need dataset-level statistics before planning a job: SJMR
needs the space MBR to define its repartition grid, index building needs
the record count, and the real system's ``info`` shell command prints all
of it. For an indexed file the statistics are free (they live in the
global index); for a heap file a map-only statistics job computes them in
one cheap pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.result import OperationResult
from repro.core.splitter import global_index_of
from repro.geometry import Rectangle
from repro.index.partitioners.base import shape_mbr
from repro.mapreduce import Job, JobRunner


@dataclass(frozen=True)
class FileStats:
    """Summary statistics of one spatial file."""

    num_records: int
    num_blocks: int
    mbr: Optional[Rectangle]  # None for an empty file
    indexed: bool
    technique: Optional[str] = None

    @property
    def density(self) -> float:
        """Records per unit area (0 for empty/degenerate extents)."""
        if self.mbr is None or self.mbr.area <= 0:
            return 0.0
        return self.num_records / self.mbr.area


def _stats_map(_key, records, ctx):
    """Per-block record count + MBR (module-level: picklable)."""
    if not records:
        return
    mbr = shape_mbr(records[0])
    for r in records[1:]:
        mbr = mbr.union(shape_mbr(r))
    ctx.emit(1, (len(records), mbr))


def _stats_reduce(_key, partials, ctx):
    """Merge the per-block partial statistics (module-level: picklable)."""
    total = sum(n for n, _ in partials)
    mbr = partials[0][1]
    for _, m in partials[1:]:
        mbr = mbr.union(m)
    ctx.emit(1, (total, mbr))


def file_stats(runner: JobRunner, file_name: str) -> OperationResult:
    """Compute :class:`FileStats` for ``file_name``.

    Indexed files answer from the global index without any MapReduce job
    (zero cost); heap files run one map-only pass.
    """
    fs = runner.fs
    entry = fs.get(file_name)
    gindex = global_index_of(fs, file_name)
    if gindex is not None:
        stats = FileStats(
            num_records=gindex.total_records,
            num_blocks=entry.num_blocks,
            mbr=gindex.mbr if len(gindex) else None,
            indexed=True,
            technique=gindex.technique,
        )
        return OperationResult(answer=stats, jobs=[])

    job = Job(
        input_file=file_name,
        map_fn=_stats_map,
        reduce_fn=_stats_reduce,
        name=f"stats({file_name})",
    )
    result = runner.run(job)
    if result.output:
        total, mbr = result.output[0]
    else:
        total, mbr = 0, None
    stats = FileStats(
        num_records=total,
        num_blocks=entry.num_blocks,
        mbr=mbr,
        indexed=False,
    )
    return OperationResult(answer=stats, jobs=[result], system="hadoop")
