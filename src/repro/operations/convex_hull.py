"""Convex hull in MapReduce.

* **Hadoop**: local hull per block (map), global hull of the local hulls'
  vertices in one reducer. Correct because the hull of a union equals the
  hull of the union of local hulls.
* **SpatialHadoop**: adds the *filter* step — a hull vertex must lie on one
  of the four directional skylines (max-max, max-min, min-max, min-min), so
  any partition pruned by all four skyline filters can be skipped.
"""

from __future__ import annotations

from typing import List, Set

from repro.core.result import OperationResult
from repro.core.reader import spatial_reader
from repro.core.splitter import global_index_of, spatial_splitter
from repro.geometry import Point, Rectangle
from repro.geometry.algorithms.convex_hull import convex_hull
from repro.geometry.algorithms.skyline import dominates
from repro.observe.plan import PlanNode
from repro.operations.common import as_points, plan_full_scan, plan_indexed_scan
from repro.index.global_index import Cell, GlobalIndex
from repro.mapreduce import Counter, Job, JobRunner

#: The four quadrant directions of the hull filter.
_DIRECTIONS = ((1, 1), (1, -1), (-1, 1), (-1, -1))


def _transform_rect(mbr: Rectangle, sx: int, sy: int) -> Rectangle:
    xs = sorted((sx * mbr.x1, sx * mbr.x2))
    ys = sorted((sy * mbr.y1, sy * mbr.y2))
    return Rectangle(xs[0], ys[0], xs[1], ys[1])


def _directional_survivors(gindex: GlobalIndex, sx: int, sy: int) -> Set[int]:
    """Cells that may contribute to the skyline in direction ``(sx, sy)``."""
    transformed = [
        (cell.cell_id, _transform_rect(cell.tight_mbr, sx, sy)) for cell in gindex
    ]
    survivors: Set[int] = set()
    for cid, mbr in transformed:
        target = mbr.top_right
        dominated = False
        for other_id, other in transformed:
            if other_id == cid:
                continue
            corners = [other.bottom_left, other.bottom_right, other.top_left]
            if any(dominates(c, target) for c in corners):
                dominated = True
                break
        if not dominated:
            survivors.add(cid)
    return survivors


def convex_hull_filter(gindex: GlobalIndex) -> List[Cell]:
    """Union of the four directional skyline filters."""
    keep: Set[int] = set()
    for sx, sy in _DIRECTIONS:
        keep |= _directional_survivors(gindex, sx, sy)
    return [c for c in gindex if c.cell_id in keep]


def _map_local_hull(_key, records, ctx):
    for p in convex_hull(as_points(records)):
        ctx.emit(1, p)


def _reduce_global_hull(_key, points, ctx):
    for p in convex_hull(points):
        ctx.emit(1, p)


def convex_hull_hadoop(runner: JobRunner, file_name: str) -> OperationResult:
    """Unindexed convex hull: every block contributes its local hull."""
    job = Job(
        input_file=file_name,
        map_fn=_map_local_hull,
        combine_fn=_reduce_global_hull,
        reduce_fn=_reduce_global_hull,
        name=f"hull-hadoop({file_name})",
    )
    result = runner.run(job)
    return OperationResult(
        answer=_ccw(result.output), jobs=[result], system="hadoop"
    )


def convex_hull_spatial(
    runner: JobRunner, file_name: str, prune: bool = True
) -> OperationResult:
    """Indexed convex hull with the four-skyline filter step."""
    gindex = global_index_of(runner.fs, file_name)
    if gindex is None:
        raise ValueError(f"{file_name!r} is not spatially indexed")
    with runner.tracer.span(
        f"op:hull-spatial({file_name})",
        kind="operation",
        file=file_name,
        pruning=prune,
    ) as op_span:
        job = Job(
            input_file=file_name,
            map_fn=_map_local_hull,
            combine_fn=_reduce_global_hull,
            reduce_fn=_reduce_global_hull,
            splitter=spatial_splitter(convex_hull_filter if prune else None),
            reader=spatial_reader,
            name=f"hull-spatial({file_name})",
        )
        result = runner.run(job)
        op_span.set("hull_size", len(result.output))
        op_span.set(
            "partitions_pruned", result.counters.get(Counter.BLOCKS_PRUNED)
        )
    return OperationResult(answer=_ccw(result.output), jobs=[result])


def _ccw(points: List[Point]) -> List[Point]:
    """Normalise the reducer's hull output to a clean CCW vertex list."""
    return convex_hull(points)


# ----------------------------------------------------------------------
# Plan hook (EXPLAIN)
# ----------------------------------------------------------------------
def plan_convex_hull(
    runner: JobRunner, file_name: str, prune: bool = True
) -> PlanNode:
    """EXPLAIN plan for the convex-hull operation."""
    from repro.operations.skyline import est_summary_size

    gindex = global_index_of(runner.fs, file_name)
    op_name = f"ConvexHull({file_name})"
    if gindex is None:
        entry = runner.fs.get(file_name)
        return plan_full_scan(
            runner,
            file_name,
            op_name,
            f"job:hull-hadoop({file_name})",
            map_desc="per-block local hull",
            reduce_desc="hull of hulls",
            shuffle_per_block=est_summary_size(
                entry.num_records // max(1, entry.num_blocks)
            ),
        )
    selected = convex_hull_filter(gindex) if prune else list(gindex)
    return plan_indexed_scan(
        runner,
        op_name,
        f"job:hull-spatial({file_name})",
        gindex,
        selected,
        map_desc="per-partition local hull",
        reduce_desc="hull of hulls",
        shuffle_records=sum(est_summary_size(c.num_records) for c in selected),
        filter_desc="four-directional skyline" if prune else "every-partition",
    )
