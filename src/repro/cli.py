"""Command-line interface, mirroring SpatialHadoop's shell operations.

The real system is driven from the Hadoop shell (``shadoop generate ...``,
``shadoop index ...``, ``shadoop rangequery ...``). This CLI reproduces
that workflow on the simulator: a *workspace* file persists the simulated
HDFS between invocations, so a session looks like::

    python -m repro -w ws.pkl generate pts --n 100000
    python -m repro -w ws.pkl index pts pts_idx --technique str
    python -m repro -w ws.pkl rangequery pts_idx --window 0,0,1e5,1e5
    python -m repro -w ws.pkl knn pts_idx --point 5e5,5e5 --k 10
    python -m repro -w ws.pkl plot pts_idx --ascii
    python -m repro -w ws.pkl info pts_idx
    python -m repro -w ws.pkl history
    python -m repro -w ws.pkl explain "range pts_idx 0,0,1e5,1e5"
    python -m repro -w ws.pkl explain --analyze "knn pts_idx 5e5,5e5 10"
    python -m repro -w ws.pkl doctor pts_idx --heatmap pts.svg
    python -m repro -w ws.pkl metrics --format prom
    python -m repro -w ws.pkl --profile rangequery pts_idx --window 0,0,1e5,1e5
    python -m repro -w ws.pkl profile --flamegraph phases.svg
    python -m repro sentinel --baseline BENCH_e14.json

Every query command prints the answer summary plus the cost line the
benchmarks use (blocks read, records shuffled, simulated makespan);
``-v`` adds the full sorted counter table. The global ``--trace FILE``
flag records a structured span trace of the invocation (JSON-lines,
plus a Chrome ``trace_event`` file for chrome://tracing / Perfetto),
and the ``history`` subcommand renders the Hadoop-JobHistory-style
report of the jobs the workspace has run.

The telemetry pipeline rides on three more pieces: ``--telemetry FILE``
appends wave-boundary metric scrapes (normalized JSONL, bit-identical
between serial and ``--workers N`` runs), ``metrics`` exports the
workspace metrics as Prometheus/OpenMetrics text, ``--profile`` +
``profile`` break job time into per-task phases (flamegraph-ready) and
``sentinel`` gates CI on perf drift against a ``BENCH_*.json`` baseline.

The flight recorder closes the loop: ``--log-level LEVEL`` arms a
structured event log that persists with the workspace (``repro logs``
queries it), ``bundle export/import/inspect`` freezes a whole run's
observability record into one checksummed file, ``diff A B`` attributes
the wall-time and counter deltas between two bundles down to the
culprit job/wave/phase, and ``report`` renders a bundle as a
self-contained HTML ops dashboard.
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path
from typing import List, Optional

from repro import SpatialHadoop
from repro.core.result import OperationResult
from repro.observe.bundle import BundleError
from repro.core.splitter import global_index_of
from repro.core.workspace import (
    WorkspaceError,
    load_workspace,
    save_workspace,
)
from repro.datagen import generate_points, generate_polygons, generate_rectangles
from repro.geometry import Point, Rectangle
from repro.index.build import PARTITIONERS
from repro.mapreduce.checkpoint import (
    CancellationToken,
    CheckpointCorruptError,
    CheckpointNotFoundError,
    DeadlineExceeded,
    DriverCrashed,
    RunCancelled,
    default_checkpoint_dir,
)

#: Exit codes for interrupted runs (sysexits / shell conventions):
#: an injected driver crash, a blown ``--deadline`` (mirrors
#: ``timeout(1)``), signal cancellation (``128 + signum``), and a
#: request shed by service admission control (EX_TEMPFAIL: retry later).
EXIT_DRIVER_CRASH = 70
EXIT_DEADLINE = 124
EXIT_SIGINT = 130
EXIT_OVERLOADED = 75


def _load_workspace(path: Path, num_nodes: int) -> SpatialHadoop:
    if path.exists():
        # Structured errors (corrupt / truncated / wrong type / newer
        # format) surface as a clean message, never a pickle traceback.
        return load_workspace(path, expected_type=SpatialHadoop)
    return SpatialHadoop(num_nodes=num_nodes, job_overhead_s=0.05)


def _save_workspace(sh: SpatialHadoop, path: Path) -> None:
    save_workspace(sh, path)


def _parse_window(text: str) -> Rectangle:
    parts = [float(v) for v in text.split(",")]
    if len(parts) != 4:
        raise SystemExit("--window expects x1,y1,x2,y2")
    return Rectangle(*parts)


def _parse_point(text: str) -> Point:
    parts = [float(v) for v in text.split(",")]
    if len(parts) != 2:
        raise SystemExit("--point expects x,y")
    return Point(*parts)


def _cost_line(op: OperationResult) -> str:
    return (
        f"[cost] blocks read: {op.blocks_read}, shuffled records: "
        f"{op.counters['SHUFFLE_RECORDS']}, rounds: {op.rounds}, "
        f"simulated: {op.makespan:.3f}s"
    )


def _print_counter_table(counters, indent: str = "  ") -> None:
    items = list(counters.items())
    if not items:
        print(f"{indent}(no counters)")
        return
    width = max(len(name) for name, _ in items)
    for name, value in items:
        print(f"{indent}{name:<{width}} {value:>12d}")


def _print_cost(op: OperationResult, verbose: bool) -> None:
    print(_cost_line(op))
    if verbose:
        print("[counters]")
        _print_counter_table(op.counters)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpatialHadoop reproduction CLI (simulated cluster)",
    )
    parser.add_argument(
        "-w", "--workspace", default="repro_workspace.pkl",
        help="workspace file persisting the simulated HDFS",
    )
    parser.add_argument(
        "--nodes", type=int, default=25,
        help="cluster size when creating a new workspace",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run map/reduce waves across N worker processes "
             "(default: $REPRO_WORKERS, else serial); results are "
             "identical to serial execution",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="retry each failed task up to N attempts before the job "
             "fails (default: 4)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="fail a task attempt whose simulated CPU charge exceeds "
             "this many seconds (default: no timeout)",
    )
    parser.add_argument(
        "--speculative", action="store_true",
        help="launch backup attempts for straggler tasks "
             "(Hadoop speculative execution)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject deterministic faults, e.g. "
             "'crash:map:1,kill:map:2' or 'random:crash:0.1:seed'; "
             "overrides $REPRO_FAULTS for this invocation",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="journal every map/reduce wave to DIR so a crashed or "
             "cancelled invocation can be continued with 'repro resume "
             "DIR' — results bit-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="stop cooperatively at the next task boundary once this "
             "much time has elapsed (exit 124); with --checkpoint the "
             "partial run is resumable",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a structured trace of this invocation: JSON-lines "
             "spans to FILE plus a Chrome trace_event file next to it "
             "(open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="stream live wave/task progress of every job to stderr",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="FILE",
        help="export the workspace's wave-boundary metric scrapes as "
             "normalized JSONL to FILE at the end of this invocation "
             "(bit-identical between serial and --workers N runs)",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=("debug", "info", "warn", "error"),
        help="arm the structured event log at LEVEL for this invocation; "
             "the log persists with the workspace (query it with the "
             "'logs' subcommand)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile per-task phases (shm attach, columnar decode, "
             "kernels, R-tree probes ...) for this invocation's jobs; "
             "see the 'profile' subcommand",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print the full sorted counter table after query commands",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic dataset")
    p.add_argument("file")
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--distribution", default="uniform")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--shape", choices=("point", "rect", "polygon"), default="point"
    )

    p = sub.add_parser("index", help="build a spatial index")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--technique", default="str", choices=sorted(PARTITIONERS))
    p.add_argument("--block-capacity", type=int, default=None)

    p = sub.add_parser("rangequery", help="range query")
    p.add_argument("file")
    p.add_argument("--window", required=True)

    p = sub.add_parser("knn", help="k nearest neighbours")
    p.add_argument("file")
    p.add_argument("--point", required=True)
    p.add_argument("--k", type=int, default=10)

    p = sub.add_parser("sjoin", help="spatial join of two files")
    p.add_argument("left")
    p.add_argument("right")

    p = sub.add_parser("knnjoin", help="kNN join: k nearest S per R record")
    p.add_argument("left")
    p.add_argument("right")
    p.add_argument("--k", type=int, default=3)

    p = sub.add_parser("rangecount", help="COUNT records in a window")
    p.add_argument("file")
    p.add_argument("--window", required=True)

    for name in ("skyline", "hull", "closestpair", "farthestpair", "voronoi"):
        p = sub.add_parser(name, help=f"{name} operation")
        p.add_argument("file")

    p = sub.add_parser("union", help="polygon union")
    p.add_argument("file")
    p.add_argument("--enhanced", action="store_true")

    p = sub.add_parser("plot", help="rasterise a file")
    p.add_argument("file")
    p.add_argument("--width", type=int, default=70)
    p.add_argument("--height", type=int, default=30)
    p.add_argument("--out", default=None, help="write a PGM image here")
    p.add_argument("--ascii", action="store_true", help="print ASCII art")

    p = sub.add_parser("pigeon", help="run a Pigeon script")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--script", help="path to a script file")
    group.add_argument("-e", "--execute", help="inline script text")

    sub.add_parser("ls", help="list files in the workspace")

    p = sub.add_parser("info", help="describe one file")
    p.add_argument("file")

    p = sub.add_parser(
        "explain",
        help="EXPLAIN a query: print its plan tree without executing it",
    )
    p.add_argument(
        "query", nargs="+",
        help="query text, e.g.: range pts_idx 0,0,100,100 | "
             "knn pts_idx 50,50 10 | sjoin a b | skyline pts_idx",
    )
    p.add_argument(
        "--analyze", action="store_true",
        help="execute the query and annotate the plan with actuals",
    )
    p.add_argument(
        "--pigeon", action="store_true",
        help="the query is a Pigeon script (a file path, or inline text)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text tree)",
    )

    p = sub.add_parser(
        "doctor",
        help="diagnose an indexed file: skew, overlap hot-spots, fill",
    )
    p.add_argument("file")
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text report)",
    )
    p.add_argument(
        "--heatmap", default=None, metavar="PATH",
        help="write a per-partition record-density heatmap "
             "(.svg for SVG, anything else for PGM)",
    )
    p.add_argument("--block-capacity", type=int, default=None)

    p = sub.add_parser(
        "fsck",
        help="verify block checksums, replica health and index integrity",
    )
    p.add_argument(
        "--repair", action="store_true",
        help="re-replicate corrupt/under-replicated blocks and rebuild "
             "damaged local indexes from surviving replicas",
    )
    p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="also audit this crash-recovery checkpoint journal "
             "(default: the workspace's <workspace>.ckpt, if present)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text report)",
    )

    p = sub.add_parser(
        "resume",
        help="continue an interrupted checkpointed run (crash, deadline "
             "or signal) and verify it completes bit-identically",
    )
    p.add_argument(
        "directory", nargs="?", default=None,
        help="checkpoint journal to resume (default: the workspace's "
             "<workspace>.ckpt)",
    )
    p.add_argument(
        "--list", action="store_true", dest="list_runs",
        help="list resumable (and corrupt) checkpoint journals instead "
             "of resuming",
    )
    p.add_argument(
        "--dir", default=None, metavar="ROOT",
        help="root directory scanned by --list (default: the "
             "workspace file's directory)",
    )

    p = sub.add_parser(
        "history", help="render the job-history report for this workspace"
    )
    p.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the N most recent jobs (default: all retained)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text report)",
    )

    p = sub.add_parser(
        "metrics",
        help="export the workspace metrics registry",
    )
    p.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="'prom' = Prometheus/OpenMetrics text exposition "
             "(default), 'json' = raw snapshot",
    )

    p = sub.add_parser(
        "profile",
        help="aggregate phase profiles of profiled jobs in the history",
    )
    p.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the N most recent jobs (default: all retained)",
    )
    p.add_argument(
        "--flamegraph", default=None, metavar="FILE",
        help="also write a flamegraph (.svg, or .txt for raw "
             "collapsed stacks)",
    )

    p = sub.add_parser(
        "sentinel",
        help="compare a benchmark snapshot against a baseline; exits "
             "non-zero on perf regressions (the CI gate)",
    )
    p.add_argument(
        "--baseline", required=True, metavar="FILE",
        help="baseline BENCH_*.json file",
    )
    p.add_argument(
        "--current", default=None, metavar="FILE",
        help="snapshot to check (default: the baseline itself, a "
             "trivially clean wiring check)",
    )
    p.add_argument(
        "--tolerance", type=float, default=None, metavar="PCT",
        help="symmetric drift tolerance in percent (default: 20)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text report)",
    )

    p = sub.add_parser(
        "logs",
        help="query the workspace's structured event log "
             "(arm it with --log-level)",
    )
    p.add_argument(
        "--grep", default=None, metavar="TEXT",
        help="case-insensitive substring match over the rendered line",
    )
    p.add_argument(
        "--level", default=None, choices=("debug", "info", "warn", "error"),
        help="minimum severity to show",
    )
    p.add_argument("--component", default=None, help="exact component match")
    p.add_argument("--task", default=None, help="exact task-id match")
    p.add_argument("--job", default=None, help="exact job-name match")
    p.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the N most recent matching events",
    )
    p.add_argument(
        "--normalize", action="store_true",
        help="print the backend-independent view (volatile events "
             "dropped, timestamps replaced by ordinals); ignores the "
             "filter flags",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text lines)",
    )

    p = sub.add_parser(
        "bundle",
        help="export/import/inspect a single-file run bundle capturing "
             "this workspace's whole observability record",
    )
    p.add_argument("action", choices=("export", "import", "inspect"))
    p.add_argument("file", help="bundle file path")
    p.add_argument(
        "--name", default=None, metavar="NAME",
        help="run name stamped into an exported bundle "
             "(default: the workspace file's stem)",
    )

    p = sub.add_parser(
        "diff",
        help="compare two run bundles and attribute the deltas to the "
             "culprit job/wave/task/phase; exits non-zero on any "
             "out-of-tolerance delta",
    )
    p.add_argument("a", help="baseline bundle")
    p.add_argument("b", help="candidate bundle")
    p.add_argument(
        "--tolerance", type=float, default=None, metavar="PCT",
        help="relative tolerance for timing deltas in percent "
             "(default: 1)",
    )
    p.add_argument(
        "--abs-floor", type=float, default=None, metavar="SECONDS",
        help="timing deltas below this many seconds are never culprits "
             "(default: 0.001)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text culprit table)",
    )

    p = sub.add_parser(
        "report",
        help="render the workspace (or a bundle) as a self-contained "
             "HTML ops dashboard",
    )
    p.add_argument(
        "--out", default="repro_report.html", metavar="FILE",
        help="output HTML file (default: repro_report.html)",
    )
    p.add_argument(
        "--bundle", default=None, metavar="FILE",
        help="render this bundle instead of the live workspace",
    )
    p.add_argument(
        "--vs", default=None, metavar="FILE",
        help="also include a run-diff section against this baseline "
             "bundle",
    )

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant query service over this workspace: "
             "line-oriented request/response (one JSON object per line) "
             "with admission control, fair scheduling, circuit breakers "
             "and a result cache",
    )
    p.add_argument(
        "--script", default=None, metavar="FILE",
        help="replay a recorded request script instead of reading stdin",
    )
    p.add_argument(
        "--quota", action="append", default=[], metavar="SPEC",
        help="per-tenant quota, repeatable: tenant=key=value[,...] with "
             "keys weight, inflight, queue, budget, window — e.g. "
             "'alice=weight=2,inflight=1,queue=4'",
    )
    p.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="bound globally concurrent requests (default: derived "
             "from the cluster model's serving slots)",
    )
    p.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive failures that trip a dataset's circuit "
             "breaker open (default: 3)",
    )
    p.add_argument(
        "--breaker-cooldown", type=float, default=120.0, metavar="SECONDS",
        help="simulated seconds an open breaker waits before letting a "
             "half-open probe through (default: 120)",
    )
    p.add_argument(
        "--cache-capacity", type=int, default=128, metavar="N",
        help="LRU result-cache entries (default: 128)",
    )
    p.add_argument(
        "--summary", default=None, metavar="FILE",
        help="write the terminal-outcome summary (served/degraded/"
             "overloaded/... counts) as JSON to FILE",
    )

    p = sub.add_parser(
        "query",
        help="one-shot tenant query through the service layer (admission "
             "control, breakers and degraded fallbacks apply; the global "
             "--deadline becomes the request deadline)",
    )
    p.add_argument(
        "--tenant", default="default", metavar="NAME",
        help="tenant to submit as (default: 'default')",
    )
    p.add_argument(
        "query", nargs="+",
        help="query text, e.g.: range pts_idx 0,0,100,100",
    )

    p = sub.add_parser("rm", help="delete a file")
    p.add_argument("file")

    return parser


def _print_resume_hint(manager) -> None:
    if manager is not None:
        print(
            f"[checkpoint] partial run journaled — continue with: "
            f"repro resume {manager.directory}",
            file=sys.stderr,
        )


def _cmd_resume(args: argparse.Namespace) -> int:
    """The ``resume`` subcommand: list journals, or continue one."""
    from repro.mapreduce.checkpoint import CheckpointManager, list_runs

    workspace = Path(args.workspace)
    if args.list_runs:
        root = Path(args.dir) if args.dir else (workspace.parent or Path("."))
        runs = list_runs(root)
        if not runs:
            print(f"no checkpointed runs under {root}")
            return 0
        for run in runs:
            line = f"{run['directory']}: {run['status']}"
            if run.get("command"):
                line += f" — repro {run['command']}"
            if run.get("waves"):
                line += f" ({run['waves']} wave(s) journaled)"
            if run["status"] == "corrupt" and run.get("reason"):
                line += f" — {run['reason']}"
            print(line)
        return 0
    directory = (
        Path(args.directory) if args.directory
        else default_checkpoint_dir(workspace)
    )
    try:
        manager = CheckpointManager.load(directory)
    except CheckpointNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except CheckpointCorruptError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "hint: audit the journal with 'repro fsck --checkpoint-dir "
            f"{directory}' (--repair discards corrupt wave files)",
            file=sys.stderr,
        )
        return 1
    if not manager.argv:
        print(
            f"error: manifest at {directory} records no command to re-run",
            file=sys.stderr,
        )
        return 1
    print(
        f"[resume] re-running: repro {' '.join(manager.argv)}",
        file=sys.stderr,
    )
    # Replay the recorded invocation verbatim. The journal makes the
    # re-run bit-identical: committed waves replay from the checkpoint,
    # only the missing ones execute, and already-fired driver faults
    # stay fired.
    return main(manager.argv, _resume=str(directory))


def main(
    argv: Optional[List[str]] = None, _resume: Optional[str] = None
) -> int:
    original_argv = list(argv) if argv is not None else list(sys.argv[1:])
    args = _build_parser().parse_args(original_argv)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.nodes <= 0:
        print("error: --nodes must be a positive integer", file=sys.stderr)
        return 1
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 1
    if args.deadline is not None and args.deadline < 0:
        print("error: --deadline must be >= 0", file=sys.stderr)
        return 1
    path = Path(args.workspace)
    try:
        sh = _load_workspace(path, args.nodes)
    except KeyboardInterrupt:
        # Ctrl-C during workspace load, before the cooperative signal
        # handlers are installed. Nothing has run and nothing is dirty,
        # so honour the same exit contract the handlers do.
        print("error: interrupted while loading the workspace",
              file=sys.stderr)
        return EXIT_SIGINT
    except WorkspaceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:  # e.g. a malformed REPRO_WORKERS value
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.workers is not None:
        # A per-invocation execution choice, not a workspace property:
        # workspaces saved under --workers replay fine without it.
        sh.runner.set_workers(args.workers)
    if args.max_attempts is not None:
        if args.max_attempts < 1:
            print("error: --max-attempts must be >= 1", file=sys.stderr)
            return 1
        sh.runner.max_attempts = args.max_attempts
    if args.task_timeout is not None:
        sh.runner.task_timeout = args.task_timeout
    if args.speculative:
        sh.runner.speculative = True
    # Chaos tooling is per-invocation by construction: the runner drops
    # its fault plan when the workspace is pickled, so the --faults flag
    # (or, failing that, $REPRO_FAULTS) is re-resolved on every command.
    try:
        sh.runner.set_faults(args.faults)
    except ValueError as exc:
        print(f"error: bad --faults spec: {exc}", file=sys.stderr)
        return 1
    # Crash recovery. Arm AFTER set_faults (which resets the runner's
    # fired-fault memory): resume merges the journal's already-fired
    # driver faults back in so the crash that killed the original
    # invocation is not re-injected.
    manager = None
    if _resume is not None:
        try:
            manager = sh.resume(_resume)
        except (CheckpointCorruptError, CheckpointNotFoundError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    elif args.checkpoint is not None:
        manager = sh.enable_checkpoints(
            args.checkpoint,
            argv=original_argv,
            workspace=str(path),
            deadline=args.deadline,
        )
    # Cooperative cancellation: the token carries the --deadline budget
    # and is the channel signal handlers cancel through. The runner
    # polls it between tasks and at wave/round boundaries.
    token = CancellationToken(deadline_s=args.deadline)
    sh.runner.set_cancellation(token)
    tracer = sh.enable_tracing() if args.trace else None
    if args.log_level:
        # Arming (or re-levelling) the flight recorder is a workspace
        # change: the event log pickles with the workspace so later
        # invocations keep recording without the flag.
        sh.eventlog(level=args.log_level)
    if args.progress:
        sh.enable_progress()
    if args.profile:
        sh.enable_profiling()
    telemetry = sh.telemetry() if args.telemetry else None
    jobs_before = sh.history.total_recorded
    scrapes_before = len(telemetry) if telemetry is not None else 0
    mutated = False

    # Graceful shutdown: the first SIGINT/SIGTERM requests a cooperative
    # stop at the next task boundary (pools drained, shm destroyed, a
    # resumable checkpoint persisted when armed); a second one aborts
    # immediately via KeyboardInterrupt.
    def _on_signal(signum: int, _frame) -> None:
        if token.cancelled:
            raise KeyboardInterrupt
        token.cancel(f"signal {signum}", signum=signum)
        print(
            f"[cancel] caught signal {signum}; stopping at the next task "
            "boundary (send again to stop immediately)",
            file=sys.stderr,
        )

    previous_handlers = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous_handlers[sig] = signal.signal(sig, _on_signal)
        except (ValueError, OSError):  # not the main thread
            pass

    # Interrupted runs return from their except block on purpose: the
    # code after this try/finally saves the workspace, and an
    # interrupted invocation must NOT save — resume re-runs the
    # recorded command against the original on-disk state, which is
    # what makes the continuation bit-identical.
    try:
        mutated = _dispatch(sh, args)
    except DriverCrashed as exc:
        # Injected driver crash: the journal was already marked
        # interrupted (the fault fires only after its wave committed).
        print(f"error: {exc}", file=sys.stderr)
        _print_resume_hint(manager)
        return EXIT_DRIVER_CRASH
    except DeadlineExceeded as exc:
        if manager is not None:
            manager.interrupt(str(exc))
        print(f"error: {exc}", file=sys.stderr)
        _print_resume_hint(manager)
        return EXIT_DEADLINE
    except RunCancelled as exc:
        if manager is not None:
            manager.interrupt(str(exc))
        print(f"error: {exc}", file=sys.stderr)
        _print_resume_hint(manager)
        return 128 + (token.signum or signal.SIGINT)
    except KeyboardInterrupt:
        if manager is not None:
            manager.interrupt("keyboard interrupt")
        print("error: interrupted", file=sys.stderr)
        _print_resume_hint(manager)
        return EXIT_SIGINT
    except (FileNotFoundError, FileExistsError, ValueError, BundleError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except RuntimeError as exc:
        # A job failed outright — e.g. a task exhausted its attempts
        # under an injected fault plan. Report, don't traceback.
        print(f"error: job failed: {exc}", file=sys.stderr)
        return 1
    finally:
        for sig, handler in previous_handlers.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass
        sh.runner.set_cancellation(None)
        sh.runner.close()
        # The reporter holds an open stderr handle; like a live tracer it
        # is per-invocation only and must never reach the pickle below.
        sh.disable_progress()
        if args.profile:
            # Like --workers, a per-invocation choice: the saved
            # workspace replays unprofiled (env/explicit API re-enable).
            sh.runner.profile = None
        if telemetry is not None:
            written = telemetry.export_jsonl(args.telemetry)
            new = len(telemetry) - scrapes_before
            print(
                f"[telemetry] {written} scrape(s) ({new} new) -> "
                f"{args.telemetry}",
                file=sys.stderr,
            )
        if tracer is not None:
            trace_path = Path(args.trace)
            tracer.export_jsonl(trace_path)
            chrome_path = trace_path.with_suffix(".chrome.json")
            tracer.export_chrome(chrome_path)
            print(
                f"[trace] {len(tracer.records())} records -> {trace_path} "
                f"(Chrome: {chrome_path})",
                file=sys.stderr,
            )
            # Live tracers are per-invocation diagnostics; never pickle
            # one into the workspace.
            sh.disable_tracing()

    # The command completed: checkpoints served their purpose. Record
    # what a resume recovered, then garbage-collect the journal —
    # completed jobs must not leave stale state for a later resume to
    # trip over.
    if manager is not None:
        if _resume is not None:
            sh.history.record_recovery(manager.recovery_summary())
            mutated = True
        manager.finish()
        sh.runner.set_checkpoint(None)

    # Query commands don't mutate the file system, but they do append to
    # the job history — persist that too so `repro history` accumulates.
    # Arming the event log also persists (the log rides the workspace).
    if mutated or sh.history.total_recorded > jobs_before or args.log_level:
        _save_workspace(sh, path)
    # Gate commands (sentinel) report their verdict via the exit code.
    return getattr(args, "exit_code", 0)


def _dispatch(sh: SpatialHadoop, args: argparse.Namespace) -> bool:
    """Run one subcommand; returns True when the workspace changed."""
    cmd = args.command
    if cmd == "generate":
        if args.shape == "point":
            records = generate_points(args.n, args.distribution, seed=args.seed)
        elif args.shape == "rect":
            records = generate_rectangles(args.n, args.distribution, seed=args.seed)
        else:
            records = generate_polygons(args.n, args.distribution, seed=args.seed)
        sh.load(args.file, records)
        print(
            f"generated {args.n} {args.distribution} {args.shape}s "
            f"into '{args.file}' ({sh.fs.num_blocks(args.file)} blocks)"
        )
        return True

    if cmd == "index":
        result = sh.index(
            args.input, args.output,
            technique=args.technique,
            block_capacity=args.block_capacity,
        )
        print(
            f"indexed '{args.input}' -> '{args.output}' with {args.technique}: "
            f"{len(result.global_index)} partitions, "
            f"replication {result.replication:.3f}, "
            f"simulated {result.makespan:.3f}s"
        )
        return True

    if cmd == "rangequery":
        op = sh.range_query(args.file, _parse_window(args.window))
        print(f"{len(op.answer)} records match")
        _print_cost(op, args.verbose)
        return False

    if cmd == "knn":
        op = sh.knn(args.file, _parse_point(args.point), args.k)
        for distance, record in op.answer:
            print(f"{distance:12.3f}  {record}")
        _print_cost(op, args.verbose)
        return False

    if cmd == "sjoin":
        op = sh.spatial_join(args.left, args.right)
        print(f"{len(op.answer)} overlapping pairs")
        _print_cost(op, args.verbose)
        return False

    if cmd == "knnjoin":
        op = sh.knn_join(args.left, args.right, args.k)
        print(f"{len(op.answer)} rows, k={args.k}")
        _print_cost(op, args.verbose)
        return False

    if cmd == "rangecount":
        op = sh.range_count(args.file, _parse_window(args.window))
        print(f"count: {op.answer}")
        _print_cost(op, args.verbose)
        return False

    if cmd == "skyline":
        op = sh.skyline(args.file)
        print(f"skyline has {len(op.answer)} points:")
        for p in op.answer:
            print(f"  {p}")
        _print_cost(op, args.verbose)
        return False

    if cmd == "hull":
        op = sh.convex_hull(args.file)
        print(f"convex hull has {len(op.answer)} vertices")
        _print_cost(op, args.verbose)
        return False

    if cmd == "closestpair":
        op = sh.closest_pair(args.file)
        a, b = op.answer
        print(f"closest pair: {a} — {b} (distance {a.distance(b):.6f})")
        _print_cost(op, args.verbose)
        return False

    if cmd == "farthestpair":
        op = sh.farthest_pair(args.file)
        a, b = op.answer
        print(f"farthest pair: {a} — {b} (distance {a.distance(b):.3f})")
        _print_cost(op, args.verbose)
        return False

    if cmd == "voronoi":
        op = sh.voronoi(args.file)
        res = op.answer
        print(
            f"voronoi diagram: {len(res.regions)} regions, "
            f"{100 * res.pruned_fraction:.1f}% finalised before the merge"
        )
        _print_cost(op, args.verbose)
        return False

    if cmd == "union":
        op = sh.union(args.file, enhanced=args.enhanced)
        if args.enhanced:
            print(f"union boundary: {len(op.answer)} segments")
        else:
            print(f"union: {len(op.answer)} rings")
        _print_cost(op, args.verbose)
        return False

    if cmd == "plot":
        from repro.viz import plot as viz_plot

        op = viz_plot(sh.runner, args.file, width=args.width, height=args.height)
        if args.out:
            Path(args.out).write_text(op.answer.to_pgm())
            print(f"wrote {args.out}")
        if args.ascii or not args.out:
            print(op.answer.to_ascii())
        _print_cost(op, args.verbose)
        return False

    if cmd == "pigeon":
        from repro.pigeon import run_script

        text = args.execute if args.execute else Path(args.script).read_text()
        result = run_script(sh, text)
        for name, records in result.dumped.items():
            print(f"-- DUMP {name} ({len(records)} records)")
            for record in records[:20]:
                print(f"  {record}")
            if len(records) > 20:
                print(f"  ... {len(records) - 20} more")
        print(
            f"[cost] {result.total_rounds} MapReduce rounds, "
            f"simulated {result.total_makespan:.3f}s"
        )
        return True  # scripts may STORE new files

    if cmd == "ls":
        for name in sh.fs.list_files():
            entry = sh.fs.get(name)
            indexed = "indexed" if "global_index" in entry.metadata else "heap"
            print(
                f"{name:30s} {entry.num_records:>10d} records "
                f"{entry.num_blocks:>5d} blocks  {indexed}"
            )
        return False

    if cmd == "info":
        entry = sh.fs.get(args.file)
        print(f"file      : {args.file}")
        print(f"records   : {entry.num_records}")
        print(f"blocks    : {entry.num_blocks}")
        gindex = global_index_of(sh.fs, args.file)
        if gindex is None:
            print("index     : none (heap file)")
        else:
            print(f"index     : {gindex.technique} "
                  f"({'disjoint' if gindex.disjoint else 'overlapping'})")
            print(f"file MBR  : {gindex.mbr}")
            for cell in gindex:
                print(f"  {cell}")
        if args.verbose:
            snapshot = sh.metrics.snapshot()
            print("workspace metrics:")
            _print_counter_table(snapshot["counters"])
        return False

    if cmd == "explain":
        from repro.observe import explain as explain_mod

        text = " ".join(args.query)
        if args.pigeon:
            script_path = Path(text)
            script = script_path.read_text() if script_path.exists() else text
            explanation = explain_mod.explain_pigeon(
                sh, script, analyze=args.analyze
            )
        elif args.analyze:
            explanation = sh.analyze(text)
        else:
            explanation = sh.explain(text)
        if args.format == "json":
            print(explanation.to_json())
        else:
            print(explanation.render())
        return False

    if cmd == "doctor":
        diagnosis = sh.doctor(args.file, block_capacity=args.block_capacity)
        if args.format == "json":
            import json

            print(json.dumps(diagnosis.to_dict(), indent=2, default=str))
        else:
            print(diagnosis.render())
        if args.heatmap:
            from repro.viz import write_heatmap

            fmt = write_heatmap(
                global_index_of(sh.fs, args.file), args.heatmap
            )
            print(f"wrote {fmt} heatmap to {args.heatmap}", file=sys.stderr)
        return False

    if cmd == "fsck":
        ckpt_dir = args.checkpoint_dir
        if ckpt_dir is None:
            candidate = default_checkpoint_dir(Path(args.workspace))
            if candidate.is_dir():
                ckpt_dir = str(candidate)
        report = sh.fsck(repair=args.repair, checkpoint_dir=ckpt_dir)
        if args.format == "json":
            import json

            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        # fsck always mutates history; --repair also heals the fs.
        return True

    if cmd == "history":
        if args.format == "json":
            import json

            print(json.dumps(sh.history.to_dict(last=args.last), indent=2))
        else:
            print(sh.history.report(last=args.last), end="")
        return False

    if cmd == "metrics":
        if args.format == "json":
            import json

            print(json.dumps(sh.metrics.snapshot(), indent=2))
        else:
            print(sh.openmetrics(), end="")
        return False

    if cmd == "profile":
        from repro.observe import profile as profile_mod

        merged: dict = {}
        profiled = 0
        for rec in sh.history.last(args.last):
            phases = getattr(rec, "phase_profile", None)
            if phases:
                profile_mod.merge_profiles(merged, phases)
                profiled += 1
        print(
            f"phase profile over {profiled} profiled job(s) "
            f"(of {len(sh.history.last(args.last))} in range):"
        )
        print(profile_mod.render_report(merged).rstrip())
        if args.flamegraph:
            from repro.viz import write_flamegraph

            if not merged:
                raise ValueError(
                    "no profiled jobs in range — run queries with "
                    "--profile (or REPRO_PROFILE=1) first"
                )
            write_flamegraph(
                profile_mod.collapse(merged), args.flamegraph
            )
            print(f"wrote flamegraph to {args.flamegraph}", file=sys.stderr)
        return False

    if cmd == "sentinel":
        from repro.observe import sentinel as sentinel_mod

        kwargs = {}
        if args.tolerance is not None:
            kwargs["tolerance_pct"] = args.tolerance
        report = sentinel_mod.compare_files(
            args.baseline, args.current, **kwargs
        )
        if args.format == "json":
            import json

            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        args.exit_code = report.exit_code
        return False

    if cmd == "logs":
        from repro.observe.log import render_report

        log = getattr(sh.runner, "eventlog", None)
        if log is None:
            print(
                "event log is not armed for this workspace — run any "
                "command with --log-level first (e.g. --log-level info)"
            )
            return False
        if args.normalize:
            records = log.normalized_records()
            if args.last is not None:
                records = records[-args.last:]
        else:
            records = log.query(
                level=args.level,
                component=args.component,
                task=args.task,
                job=args.job,
                grep=args.grep,
                last=args.last,
            )
        if args.format == "json":
            import json

            print(json.dumps(records, indent=2, default=str))
        else:
            print(render_report(records, dropped=log.dropped))
        return False

    if cmd == "bundle":
        from repro.observe import bundle as bundle_mod

        if args.action == "export":
            name = args.name or Path(args.workspace).stem
            doc = bundle_mod.collect_bundle(sh, name=name)
            size = bundle_mod.write_bundle(doc, args.file)
            print(
                f"exported run bundle '{name}' -> {args.file} "
                f"({size} bytes)"
            )
            return False
        if args.action == "inspect":
            doc = bundle_mod.read_bundle(args.file)
            print(bundle_mod.inspect_bundle(doc, args.file))
            return False
        # import: replace this workspace's history/telemetry/event log.
        doc = bundle_mod.read_bundle(args.file)
        restored = bundle_mod.import_bundle(sh, doc)
        print(
            f"imported {args.file}: {restored['jobs']} job(s), "
            f"{restored['fsck_runs']} fsck run(s), "
            f"{restored['scrapes']} scrape(s), "
            f"{restored['events']} event(s)"
        )
        return True

    if cmd == "diff":
        from repro.observe import diff as diff_mod

        kwargs = {}
        if args.tolerance is not None:
            kwargs["tolerance_pct"] = args.tolerance
        if args.abs_floor is not None:
            kwargs["abs_floor_s"] = args.abs_floor
        report = diff_mod.diff_bundles(args.a, args.b, **kwargs)
        if args.format == "json":
            print(report.to_json())
        else:
            print(report.render(), end="")
        args.exit_code = report.exit_code
        return False

    if cmd == "report":
        from repro.observe import bundle as bundle_mod
        from repro.observe import diff as diff_mod
        from repro.viz import write_dashboard

        if args.bundle:
            doc = bundle_mod.read_bundle(args.bundle)
            label = str(args.bundle)
        else:
            doc = bundle_mod.collect_bundle(
                sh, name=Path(args.workspace).stem
            )
            label = "current workspace"
        diff_doc = None
        if args.vs:
            baseline = bundle_mod.read_bundle(args.vs)
            diff_doc = diff_mod.diff_docs(
                baseline, doc, label_a=str(args.vs), label_b=label
            ).to_dict()
        write_dashboard(doc, args.out, diff=diff_doc)
        print(f"wrote ops dashboard for {label} -> {args.out}")
        return False

    if cmd == "serve":
        return _cmd_serve(sh, args)

    if cmd == "query":
        from repro.serve import Overloaded

        service = sh.serve()
        try:
            response = service.query(
                args.tenant, " ".join(args.query), deadline_s=args.deadline
            )
        except Overloaded as exc:
            print(f"error: {exc}", file=sys.stderr)
            args.exit_code = EXIT_OVERLOADED
            return False
        finally:
            service.shutdown()
        print(response.to_json())
        if response.outcome == "deadline":
            args.exit_code = EXIT_DEADLINE
        elif response.outcome == "error":
            args.exit_code = 1
        return False

    if cmd == "rm":
        if not sh.fs.delete(args.file):
            raise FileNotFoundError(f"no such file: {args.file!r}")
        print(f"deleted '{args.file}'")
        return True

    raise SystemExit(f"unknown command {cmd!r}")  # pragma: no cover


class _GracefulShutdown(Exception):
    """Raised by the serve loop's SIGTERM handler to trigger a drain."""


def _cmd_serve(sh: SpatialHadoop, args: argparse.Namespace) -> bool:
    """The ``serve`` subcommand: a line-oriented service session.

    Requests come from ``--script`` or stdin; each terminal response is
    printed as one JSON line. SIGTERM (and end-of-input) shuts down
    gracefully: queues drain, pools close, the workspace persists (job
    history accumulated by served queries triggers the save in
    :func:`main`), and the exit code is 0.
    """
    import json

    from repro.serve import ServiceConfig, parse_quota_spec

    quotas = {}
    for spec in args.quota:
        quotas.update(parse_quota_spec(spec))
    config = ServiceConfig(
        max_inflight=args.max_inflight,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        cache_capacity=args.cache_capacity,
    )
    service = sh.serve(config=config, quotas=quotas)

    def _on_term(signum: int, _frame) -> None:
        service.request_shutdown()
        raise _GracefulShutdown()

    previous_term = None
    try:
        previous_term = signal.signal(signal.SIGTERM, _on_term)
    except (ValueError, OSError):  # not the main thread
        pass
    try:
        if args.script:
            lines = Path(args.script).read_text().splitlines()
            for response in service.process_script(lines):
                print(response.to_json())
        else:
            print(
                "[serve] reading requests from stdin, one JSON object "
                "per line ({\"tenant\": ..., \"query\": ..., "
                "\"deadline_s\": ...}); EOF or SIGTERM stops the service",
                file=sys.stderr,
            )
            for line in sys.stdin:
                for response in service.process_script([line]):
                    print(response.to_json(), flush=True)
                if service.shutdown_requested:
                    break
    except _GracefulShutdown:
        print(
            "[serve] SIGTERM received; draining queues and shutting down",
            file=sys.stderr,
        )
    finally:
        if previous_term is not None:
            try:
                signal.signal(signal.SIGTERM, previous_term)
            except (ValueError, OSError):
                pass
    summary = service.shutdown()
    if args.summary:
        Path(args.summary).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        print(f"[serve] wrote summary to {args.summary}", file=sys.stderr)
    print(
        "[serve] {requests} request(s): {served} served, {degraded} "
        "degraded, {overloaded} overloaded, {deadline} deadline, "
        "{error} error; cache hit ratio {ratio:.2f}".format(
            ratio=summary["cache"]["hit_ratio"], **{
                k: summary[k] for k in (
                    "requests", "served", "degraded", "overloaded",
                    "deadline", "error",
                )
            }
        ),
        file=sys.stderr,
    )
    return False


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
