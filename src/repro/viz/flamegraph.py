"""Flamegraphs from collapsed-stack phase profiles.

The profiler (:mod:`repro.observe.profile`) aggregates per-task phase
timings into collapsed-stack lines — ``job;map;kernel 1234`` — the same
interchange format Brendan Gregg's ``flamegraph.pl`` consumes. This
module renders those lines as a standalone, dependency-free SVG: one
``<rect>`` per frame, width proportional to the frame's inclusive
weight, children stacked above their parent, exact numbers in
``<title>`` tooltips. Colors are a deterministic warm ramp hashed from
the frame name (CRC-32, no randomness), so two renders of the same
profile are byte-identical.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.viz.escape import escape

#: Pixel height of one frame row.
FRAME_HEIGHT = 18

#: Frames narrower than this many pixels draw without a text label.
MIN_LABEL_WIDTH = 30


class _Frame:
    __slots__ = ("name", "value", "children")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.children: Dict[str, "_Frame"] = {}

    def child(self, name: str) -> "_Frame":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _Frame(name)
        return node

    @property
    def depth(self) -> int:
        return 1 + max((c.depth for c in self.children.values()), default=0)


def parse_collapsed(lines: Iterable[str]) -> _Frame:
    """Build the frame trie from collapsed-stack lines.

    Each line is ``frame;frame;frame <integer weight>``; weights are
    *inclusive* — a parent's weight is bumped by every line passing
    through it. Blank lines are skipped; malformed lines raise.
    """
    root = _Frame("all")
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        stack, _, weight_str = line.rpartition(" ")
        if not stack or not weight_str.lstrip("-").isdigit():
            raise ValueError(f"malformed collapsed-stack line: {raw!r}")
        weight = int(weight_str)
        root.value += weight
        node = root
        for part in stack.split(";"):
            node = node.child(part)
            node.value += weight
    return root


def _color(name: str) -> str:
    """Deterministic warm color for a frame name."""
    h = zlib.crc32(name.encode("utf-8"))
    r = 205 + (h & 0x3F) % 50
    g = 60 + ((h >> 8) & 0xFF) % 120
    b = 30 + ((h >> 16) & 0x3F)
    return f"rgb({r},{g},{b})"


def flamegraph_svg(
    lines: Iterable[str],
    width: int = 960,
    title: str = "phase profile",
    unit: str = "us",
) -> str:
    """Render collapsed-stack lines as a standalone SVG flamegraph."""
    root = parse_collapsed(lines)
    depth = root.depth
    height = (depth + 2) * FRAME_HEIGHT + 24
    total = root.value or 1
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="#fdf6e3"/>',
        f'<text x="{width / 2:.0f}" y="16" text-anchor="middle" '
        f'font-size="14">{escape(title)}</text>',
    ]

    def emit(node: _Frame, x: float, level: int) -> None:
        w = width * node.value / total
        # SVG y axis points down; the flame grows up from the bottom.
        y = height - (level + 1) * FRAME_HEIGHT - 4
        pct = 100.0 * node.value / total
        label = escape(node.name)
        parts.append(
            f'<g><rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}" '
            f'height="{FRAME_HEIGHT - 1}" fill="{_color(node.name)}" '
            f'stroke="#fdf6e3" stroke-width="0.5">'
            f"<title>{label}: {node.value} {escape(unit)} ({pct:.1f}%)</title>"
            f"</rect>"
        )
        if w >= MIN_LABEL_WIDTH:
            shown = node.name[: max(1, int(w / 7))]
            parts.append(
                f'<text x="{x + 3:.2f}" y="{y + FRAME_HEIGHT - 6}" '
                f'fill="#1a1a1a">{escape(shown)}</text>'
            )
        parts.append("</g>")
        cx = x
        for name in sorted(node.children):
            child = node.children[name]
            emit(child, cx, level + 1)
            cx += width * child.value / total

    emit(root, 0.0, 0)
    parts.append("</svg>")
    return "\n".join(parts)


def write_flamegraph(
    lines: Iterable[str],
    path: str,
    width: int = 960,
    title: str = "phase profile",
) -> None:
    """Write a flamegraph SVG (or raw collapsed stacks for ``.txt``)."""
    lines = list(lines)
    if path.endswith(".txt"):
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        return
    with open(path, "w") as fh:
        fh.write(flamegraph_svg(lines, width=width, title=title))
