"""The single-level plot operation."""

from __future__ import annotations

from typing import Optional

from repro.core.result import OperationResult
from repro.core.splitter import global_index_of
from repro.geometry import Rectangle
from repro.index.partitioners.base import shape_mbr
from repro.mapreduce import Job, JobRunner
from repro.viz.canvas import Canvas


def plot(
    runner: JobRunner,
    file_name: str,
    width: int = 80,
    height: int = 40,
    window: Optional[Rectangle] = None,
) -> OperationResult:
    """Rasterise a spatial file into a :class:`Canvas` with one MapReduce job.

    Each map task draws its block onto a partial canvas; the single reducer
    overlays the partials (canvas merging is associative and commutative,
    so a combiner could be used identically). ``window`` restricts the
    plotted region; for indexed files it also prunes partitions outside the
    window via the global index.
    """
    fs = runner.fs
    gindex = global_index_of(fs, file_name)
    if window is None:
        if gindex is not None:
            window = gindex.mbr
        else:
            window = None
            for record in fs.get(file_name).records():
                mbr = shape_mbr(record)
                window = mbr if window is None else window.union(mbr)
            if window is None:
                raise ValueError(f"cannot plot empty file {file_name!r}")
        if window.width <= 0 or window.height <= 0:
            window = window.expand(max(window.margin, 1.0) * 0.01)

    def map_fn(_key, records, ctx):
        canvas = Canvas(ctx.config["w"], ctx.config["h"], ctx.config["window"])
        for record in records:
            if ctx.config["window"].intersects(shape_mbr(record)):
                canvas.draw_shape(record)
        if canvas.total_hits:
            ctx.emit(1, canvas)

    def reduce_fn(_key, canvases, ctx):
        merged = Canvas(ctx.config["w"], ctx.config["h"], ctx.config["window"])
        for canvas in canvases:
            merged.merge(canvas)
        ctx.emit(1, merged)

    splitter = None
    if gindex is not None:
        from repro.core.splitter import overlapping_filter, spatial_splitter

        splitter = spatial_splitter(overlapping_filter(window))

    job = Job(
        input_file=file_name,
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        splitter=splitter,
        config={"w": width, "h": height, "window": window},
        name=f"plot({file_name})",
    )
    result = runner.run(job)
    canvas = result.output[0] if result.output else Canvas(width, height, window)
    return OperationResult(answer=canvas, jobs=[result])
