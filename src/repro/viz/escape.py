"""The one markup-escaping helper every viz renderer shares.

Flamegraph frame names come from user-chosen job names, heatmap
tooltips from partition metadata, dashboard cells from log attributes —
all of it is untrusted text headed into SVG/HTML. Escaping is easy to
do *almost* everywhere; this module exists so every renderer does it in
exactly one place, and a test can pin the contract once.
"""

from __future__ import annotations

from typing import Any

_REPLACEMENTS = (
    ("&", "&amp;"),  # first, or the others get double-escaped
    ("<", "&lt;"),
    (">", "&gt;"),
    ('"', "&quot;"),
    ("'", "&#x27;"),
)


def escape(value: Any) -> str:
    """``value`` as text safe inside markup content *and* attributes.

    Escapes ``&``, ``<``, ``>`` and both quote styles, so callers never
    need to care whether the string lands in element text, a ``<title>``
    tooltip, or a double- or single-quoted attribute.
    """
    text = str(value)
    for char, entity in _REPLACEMENTS:
        text = text.replace(char, entity)
    return text
