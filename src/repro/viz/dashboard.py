"""The ops dashboard: one run bundle as one self-contained HTML page.

``repro report`` turns a run bundle (:mod:`repro.observe.bundle`) into a
single HTML file with **zero external references** — no scripts, fonts,
stylesheets or URLs — so it can be archived next to the bundle, attached
to a CI run, or mailed around, and will render identically forever.

Sections, in reading order:

* stat tiles — jobs run, records stored, events logged, storage health;
* the wave timeline — each job's simulated cost decomposed into
  overhead / map / shuffle / reduce as a stacked horizontal bar;
* per-job phase tables (when the run was profiled);
* a per-partition heatmap + fullest-partition table per indexed file;
* metric sparklines across the telemetry scrape log;
* the top structured-log events and the most recent log lines;
* an optional run-diff view (``repro report --vs OTHER``).

Charts are inline SVG styled by CSS custom properties with a
``prefers-color-scheme`` dark block, so light and dark mode both come
from selected palette steps rather than an automatic inversion. Every
piece of dynamic text goes through :func:`repro.viz.escape.escape`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.viz.escape import escape

#: Fixed categorical order for the cost components (never cycled).
COST_COMPONENTS = ("overhead", "map", "shuffle", "reduce")

#: Sequential blue ramp (steps 100..700) for magnitude encoding.
SEQ_RAMP = (
    "#cde2fb",
    "#9ec5f4",
    "#6da7ec",
    "#3987e5",
    "#256abf",
    "#184f95",
    "#0d366b",
)

_CSS = """\
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --surface-2: #f4f3f0;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --gridline: #e1e0d9;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --surface-2: #242422;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --gridline: #2c2c2a;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px; max-width: 1080px;
  background: var(--surface-1); color: var(--text-primary);
  font-family: system-ui, sans-serif; font-size: 14px; line-height: 1.45;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.meta { color: var(--text-secondary); margin-bottom: 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-2); border: 1px solid var(--gridline);
  border-radius: 8px; padding: 10px 16px; min-width: 130px;
}
.tile .v { font-size: 22px; font-weight: 600; font-variant-numeric: tabular-nums; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
.chip { display: inline-flex; align-items: center; gap: 6px; }
.dot { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--gridline); }
th { color: var(--text-secondary); font-weight: 500; font-size: 12px; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.legend { display: flex; gap: 16px; margin: 6px 0 10px; color: var(--text-secondary); font-size: 12px; }
.s1 { fill: var(--series-1); } .s2 { fill: var(--series-2); }
.s3 { fill: var(--series-3); } .s4 { fill: var(--series-4); }
.bdot1 { background: var(--series-1); } .bdot2 { background: var(--series-2); }
.bdot3 { background: var(--series-3); } .bdot4 { background: var(--series-4); }
.axis { stroke: var(--gridline); stroke-width: 1; }
.lbl { fill: var(--text-secondary); font-size: 11px; font-family: system-ui, sans-serif; }
.val { fill: var(--text-primary); font-size: 11px; font-variant-numeric: tabular-nums; }
.spark { stroke: var(--series-1); stroke-width: 2; fill: none; }
.sparkgrid { display: flex; flex-wrap: wrap; gap: 16px; }
.sparkcell { background: var(--surface-2); border: 1px solid var(--gridline); border-radius: 8px; padding: 8px 12px; }
.sparkcell .k { color: var(--text-secondary); font-size: 12px; }
.bar { height: 8px; background: var(--series-1); border-radius: 2px; }
.bartrack { background: var(--surface-2); border-radius: 2px; min-width: 120px; }
pre {
  background: var(--surface-2); border: 1px solid var(--gridline);
  border-radius: 8px; padding: 12px; overflow-x: auto; font-size: 12px;
}
.pos { color: var(--status-serious); } .neg { color: var(--status-good); }
.empty { color: var(--text-secondary); font-style: italic; }
footer { margin-top: 32px; color: var(--text-secondary); font-size: 12px; }
"""

#: Log level -> (status css var, label) for the chip next to a level.
_LEVEL_STATUS = {
    "error": ("var(--status-critical)", "error"),
    "warn": ("var(--status-warning)", "warn"),
    "info": ("var(--text-secondary)", "info"),
    "debug": ("var(--gridline)", "debug"),
}


def _ramp_color(value: float, peak: float) -> str:
    """Sequential-ramp step for ``value`` relative to ``peak``."""
    if peak <= 0:
        return SEQ_RAMP[0]
    frac = max(0.0, min(1.0, value / peak))
    return SEQ_RAMP[min(len(SEQ_RAMP) - 1, int(frac * len(SEQ_RAMP)))]


def _tiles(doc: Dict[str, Any]) -> str:
    history = doc.get("history") or {}
    files = doc.get("files") or []
    eventlog = doc.get("eventlog") or {}
    fsck = doc.get("fsck")
    tiles = [
        (f"{history.get('total_recorded', 0)}", "jobs run"),
        (f"{sum(int(f.get('records') or 0) for f in files)}", "records stored"),
        (f"{sum(1 for f in files if f.get('indexed'))}/{len(files)}", "files indexed"),
        (f"{len(eventlog.get('records') or [])}", "events logged"),
        (f"{len(doc.get('telemetry') or [])}", "telemetry scrapes"),
    ]
    cells = [
        f'<div class="tile"><div class="v">{escape(v)}</div>'
        f'<div class="k">{escape(k)}</div></div>'
        for v, k in tiles
    ]
    if fsck is not None:
        healthy = bool(fsck.get("healthy"))
        color = "var(--status-good)" if healthy else "var(--status-critical)"
        word = "healthy" if healthy else "unhealthy"
        cells.append(
            '<div class="tile"><div class="v chip">'
            f'<span class="dot" style="background:{color}"></span>{word}</div>'
            f'<div class="k">storage ({fsck.get("issues", 0)} issue(s))</div></div>'
        )
    return f'<div class="tiles">{"".join(cells)}</div>'


def _timeline(doc: Dict[str, Any]) -> str:
    """Stacked per-job cost bars: the wave timeline."""
    jobs = ((doc.get("history") or {}).get("jobs") or [])[-20:]
    rows = [
        (
            job.get("name", "?"),
            [float((job.get("cost") or {}).get(c) or 0.0) for c in COST_COMPONENTS],
        )
        for job in jobs
    ]
    rows = [(name, comps) for name, comps in rows if sum(comps) > 0]
    if not rows:
        return '<p class="empty">no jobs with a cost breakdown in this bundle</p>'
    peak = max(sum(comps) for _, comps in rows)
    width, label_w, row_h, gap = 1000, 320, 22, 6
    chart_w = width - label_w - 90
    height = len(rows) * (row_h + gap) + 10
    svg = [f'<svg width="{width}" height="{height}" role="img">']
    for i, (name, comps) in enumerate(rows):
        y = i * (row_h + gap)
        total = sum(comps)
        svg.append(
            f'<text x="{label_w - 8}" y="{y + row_h - 6}" text-anchor="end" '
            f'class="lbl">{escape(name[:44])}</text>'
        )
        x = float(label_w)
        for j, (component, seconds) in enumerate(zip(COST_COMPONENTS, comps)):
            if seconds <= 0:
                continue
            w = chart_w * seconds / peak
            # 2px surface gap between stacked segments.
            svg.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(w - 2, 1):.1f}" '
                f'height="{row_h - 4}" rx="2" class="s{j + 1}">'
                f"<title>{escape(name)} — {component}: {seconds:.3f}s "
                f"({100 * seconds / total:.0f}%)</title></rect>"
            )
            x += w
        svg.append(
            f'<text x="{x + 6:.1f}" y="{y + row_h - 6}" class="val">'
            f"{total:.3f}s</text>"
        )
    svg.append(
        f'<line x1="{label_w}" y1="0" x2="{label_w}" y2="{height}" class="axis"/>'
    )
    svg.append("</svg>")
    legend = "".join(
        f'<span class="chip"><span class="dot bdot{i + 1}"></span>{c}</span>'
        for i, c in enumerate(COST_COMPONENTS)
    )
    return f'<div class="legend">{legend}</div>{"".join(svg)}'


def _phase_tables(doc: Dict[str, Any]) -> str:
    jobs = (doc.get("history") or {}).get("jobs") or []
    blocks: List[str] = []
    for job in jobs:
        phases: Dict[str, Dict[str, float]] = job.get("phase_profile") or {}
        if not phases:
            continue
        total = sum(float(p.get("s") or 0.0) for p in phases.values()) or 1.0
        rows = []
        for phase in sorted(
            phases, key=lambda k: -float(phases[k].get("s") or 0.0)
        ):
            entry = phases[phase]
            seconds = float(entry.get("s") or 0.0)
            pct = 100.0 * seconds / total
            rows.append(
                f"<tr><td>{escape(phase)}</td>"
                f'<td class="num">{int(entry.get("n") or 0)}</td>'
                f'<td class="num">{seconds:.6f}</td>'
                f'<td class="num">{pct:.1f}%</td>'
                f'<td><div class="bartrack"><div class="bar" '
                f'style="width:{pct:.1f}%"></div></div></td></tr>'
            )
        blocks.append(
            f"<h3>{escape(job.get('name', '?'))}</h3>"
            '<table><thead><tr><th>phase</th><th class="num">calls</th>'
            '<th class="num">seconds</th><th class="num">share</th><th></th>'
            f'</tr></thead><tbody>{"".join(rows)}</tbody></table>'
        )
    if not blocks:
        return '<p class="empty">run with profiling on to collect phase timings</p>'
    return "".join(blocks)


def _heatmaps(doc: Dict[str, Any]) -> str:
    blocks: List[str] = []
    for file_section in doc.get("files") or []:
        cells = file_section.get("cells") or []
        if not cells:
            continue
        name = file_section.get("name", "?")
        xs = [c["mbr"][0] for c in cells] + [c["mbr"][2] for c in cells]
        ys = [c["mbr"][1] for c in cells] + [c["mbr"][3] for c in cells]
        wx1, wy1, wx2, wy2 = min(xs), min(ys), max(xs), max(ys)
        size = 340
        sx = size / max(wx2 - wx1, 1e-12)
        sy = size / max(wy2 - wy1, 1e-12)
        peak = max(int(c.get("records") or 0) for c in cells)
        svg = [
            f'<svg width="{size}" height="{size}" role="img">',
            f'<rect width="{size}" height="{size}" fill="none" class="axis"/>',
        ]
        for cell in sorted(cells, key=lambda c: c["id"]):
            records = int(cell.get("records") or 0)
            x = (cell["mbr"][0] - wx1) * sx
            # SVG's y axis points down; flip against the world window.
            y = (wy2 - cell["mbr"][3]) * sy
            w = max((cell["mbr"][2] - cell["mbr"][0]) * sx, 1.0)
            h = max((cell["mbr"][3] - cell["mbr"][1]) * sy, 1.0)
            svg.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
                f'height="{h:.1f}" fill="{_ramp_color(records, peak)}" '
                f'stroke="var(--surface-1)" stroke-width="2">'
                f"<title>partition {escape(cell['id'])}: {records} record(s)"
                f"</title></rect>"
            )
        svg.append("</svg>")
        top = sorted(cells, key=lambda c: -int(c.get("records") or 0))[:8]
        rows = "".join(
            f"<tr><td>{escape(c['id'])}</td>"
            f'<td class="num">{int(c.get("records") or 0)}</td></tr>'
            for c in top
        )
        blocks.append(
            f"<h3>{escape(name)} — {len(cells)} partition(s), "
            f"fullest {peak} record(s)</h3>"
            '<div style="display:flex;gap:24px;flex-wrap:wrap">'
            f'<div>{"".join(svg)}</div>'
            '<div style="flex:1;min-width:200px"><table><thead><tr>'
            '<th>fullest partitions</th><th class="num">records</th></tr>'
            f"</thead><tbody>{rows}</tbody></table></div></div>"
        )
    if not blocks:
        return '<p class="empty">no indexed files in this bundle</p>'
    return "".join(blocks)


def _sparklines(doc: Dict[str, Any]) -> str:
    scrapes = doc.get("telemetry") or []
    if len(scrapes) < 2:
        return (
            '<p class="empty">fewer than two telemetry scrapes in this '
            "bundle — nothing to plot over time</p>"
        )
    names: List[str] = sorted(
        {name for s in scrapes for name in (s.get("counters") or {})}
    )
    cells: List[str] = []
    for name in names[:12]:
        series = [float((s.get("counters") or {}).get(name) or 0.0) for s in scrapes]
        lo, hi = min(series), max(series)
        w, h = 200, 40
        span = (hi - lo) or 1.0
        step = w / max(len(series) - 1, 1)
        points = " ".join(
            f"{i * step:.1f},{h - 4 - (h - 8) * (v - lo) / span:.1f}"
            for i, v in enumerate(series)
        )
        cells.append(
            '<div class="sparkcell">'
            f'<div class="k">{escape(name)}</div>'
            f'<svg width="{w}" height="{h}" role="img">'
            f'<polyline class="spark" points="{points}"/></svg>'
            f'<div class="v" style="font-variant-numeric:tabular-nums">'
            f"{series[-1]:g}</div></div>"
        )
    return f'<div class="sparkgrid">{"".join(cells)}</div>'


def _log_section(doc: Dict[str, Any]) -> str:
    from repro.observe.log import render_line

    section = doc.get("eventlog")
    if not section or not section.get("records"):
        return '<p class="empty">no event log in this bundle</p>'
    records = section["records"]
    counts: Dict[Tuple[str, str, str], int] = {}
    for r in records:
        key = (r.get("level", "?"), r.get("component", "?"), r.get("event", "?"))
        counts[key] = counts.get(key, 0) + 1
    top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
    rows = []
    for (level, component, event), n in top:
        color, word = _LEVEL_STATUS.get(level, ("var(--gridline)", level))
        rows.append(
            f'<tr><td><span class="chip"><span class="dot" '
            f'style="background:{color}"></span>{escape(word)}</span></td>'
            f"<td>{escape(component)}</td><td>{escape(event)}</td>"
            f'<td class="num">{n}</td></tr>'
        )
    tail = "\n".join(escape(render_line(r)) for r in records[-15:])
    return (
        "<table><thead><tr><th>level</th><th>component</th><th>event</th>"
        f'<th class="num">count</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>'
        f"<h3>most recent</h3><pre>{tail}</pre>"
    )


def _diff_section(diff: Dict[str, Any]) -> str:
    header = (
        f"<p>{escape(diff.get('a', 'a'))} &rarr; {escape(diff.get('b', 'b'))}"
        f" — {diff.get('jobs_compared', 0)} job(s) paired</p>"
    )
    culprits = diff.get("culprits") or []
    if not culprits:
        return (
            header
            + '<p class="chip"><span class="dot" '
            'style="background:var(--status-good)"></span>'
            "no regressions: every paired delta is inside tolerance</p>"
        )
    rows = []
    for rank, c in enumerate(culprits[:25], 1):
        where = f"{c['job']}: {c['where']}" if c.get("job") else c["where"]
        unit = c.get("unit", "")
        if unit == "s":
            a_txt, b_txt = f"{c['a']:.6f}", f"{c['b']:.6f}"
            delta_txt = f"{c['delta']:+.6f}s"
        else:
            a_txt, b_txt = f"{c['a']:g}", f"{c['b']:g}"
            delta_txt = f"{c['delta']:+g} {unit}"
        if c.get("pct") is not None:
            delta_txt += f" ({c['pct']:+.1f}%)"
        cls = "pos" if c["delta"] > 0 else "neg"
        rows.append(
            f'<tr><td class="num">{rank}</td><td>{escape(c["kind"])}</td>'
            f"<td>{escape(where)}</td>"
            f'<td class="num">{escape(a_txt)}</td>'
            f'<td class="num">{escape(b_txt)}</td>'
            f'<td class="num {cls}">{escape(delta_txt)}</td></tr>'
        )
    return (
        header
        + '<table><thead><tr><th class="num">rank</th><th>kind</th>'
        '<th>where</th><th class="num">a</th><th class="num">b</th>'
        '<th class="num">delta</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table>'
    )


def render_dashboard(
    doc: Dict[str, Any], diff: Optional[Dict[str, Any]] = None
) -> str:
    """Render one bundle doc (plus an optional diff) as standalone HTML."""
    meta = doc.get("meta") or {}
    name = meta.get("name", "run")
    sections = [
        ("Wave timeline", _timeline(doc)),
        ("Phase breakdown", _phase_tables(doc)),
        ("Partition heatmap", _heatmaps(doc)),
        ("Telemetry", _sparklines(doc)),
        ("Event log", _log_section(doc)),
    ]
    if diff is not None:
        sections.append(("Run diff", _diff_section(diff)))
    body = "".join(
        f"<h2>{escape(title)}</h2>{content}" for title, content in sections
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>repro report — {escape(name)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>repro run report — {escape(name)}</h1>"
        '<p class="meta">'
        f"workers {escape(meta.get('workers', '?'))} &middot; "
        f"vectorize {escape(meta.get('vectorized', '?'))} &middot; "
        f"{escape(meta.get('num_nodes', '?'))} node(s)</p>"
        f"{_tiles(doc)}{body}"
        "<footer>self-contained report generated by repro; "
        "no external resources referenced.</footer>"
        "</body></html>\n"
    )


def write_dashboard(
    doc: Dict[str, Any], path: Any, diff: Optional[Dict[str, Any]] = None
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_dashboard(doc, diff=diff))
