"""Multilevel (tile pyramid) plotting.

The follow-up visualization work on SpatialHadoop renders web-map-style
tile pyramids: zoom level ``z`` covers the space with ``2^z x 2^z`` tiles
of a fixed pixel size. One MapReduce job renders a whole pyramid: the map
phase assigns each shape to every tile it intersects on every level (the
shape's MBR bounds which tiles see it), and each reduce group rasterises
one tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.result import OperationResult
from repro.core.splitter import global_index_of
from repro.geometry import Rectangle
from repro.index.partitioners.base import shape_mbr
from repro.mapreduce import Job, JobRunner
from repro.viz.canvas import Canvas

#: Tile address: (level, tile_x, tile_y).
TileId = Tuple[int, int, int]


@dataclass
class TilePyramid:
    """All rendered tiles of one pyramid."""

    world: Rectangle
    tile_size: int
    levels: int
    tiles: Dict[TileId, Canvas]

    def tile(self, level: int, x: int, y: int) -> Canvas:
        return self.tiles[(level, x, y)]

    def tiles_at(self, level: int) -> Dict[TileId, Canvas]:
        return {t: c for t, c in self.tiles.items() if t[0] == level}

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)


def tile_rect(world: Rectangle, level: int, x: int, y: int) -> Rectangle:
    """World-space rectangle of tile (level, x, y)."""
    n = 1 << level
    w = world.width / n
    h = world.height / n
    return Rectangle(
        world.x1 + x * w,
        world.y1 + y * h,
        world.x1 + (x + 1) * w,
        world.y1 + (y + 1) * h,
    )


def plot_pyramid(
    runner: JobRunner,
    file_name: str,
    levels: int = 3,
    tile_size: int = 64,
) -> OperationResult:
    """Render levels ``0 .. levels-1`` of the tile pyramid in one job.

    Empty tiles are neither shuffled nor rendered — the pyramid is sparse,
    exactly like a real tile server's output.
    """
    if levels < 1:
        raise ValueError("need at least one level")
    if tile_size < 1:
        raise ValueError("tile size must be positive")
    fs = runner.fs
    gindex = global_index_of(fs, file_name)
    if gindex is not None:
        world = gindex.mbr
    else:
        world = None
        for record in fs.get(file_name).records():
            mbr = shape_mbr(record)
            world = mbr if world is None else world.union(mbr)
        if world is None:
            raise ValueError(f"cannot plot empty file {file_name!r}")
    if world.width <= 0 or world.height <= 0:
        world = world.expand(max(world.margin, 1.0) * 0.01)

    def tiles_overlapping(mbr: Rectangle, level: int):
        n = 1 << level
        tw = world.width / n
        th = world.height / n
        x1 = max(0, min(n - 1, int((mbr.x1 - world.x1) / tw)))
        x2 = max(0, min(n - 1, int((mbr.x2 - world.x1) / tw)))
        y1 = max(0, min(n - 1, int((mbr.y1 - world.y1) / th)))
        y2 = max(0, min(n - 1, int((mbr.y2 - world.y1) / th)))
        for tx in range(x1, x2 + 1):
            for ty in range(y1, y2 + 1):
                yield (level, tx, ty)

    def map_fn(_key, records, ctx):
        for record in records:
            mbr = shape_mbr(record)
            if not world.intersects(mbr):
                continue
            for level in range(ctx.config["levels"]):
                for tile_id in tiles_overlapping(mbr, level):
                    ctx.emit(tile_id, record)

    def reduce_fn(tile_id, records, ctx):
        level, tx, ty = tile_id
        size = ctx.config["tile_size"]
        canvas = Canvas(size, size, tile_rect(world, level, tx, ty))
        for record in records:
            canvas.draw_shape(record)
        if canvas.total_hits:
            ctx.emit(tile_id, (tile_id, canvas))

    job = Job(
        input_file=file_name,
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        num_reducers=4 ** (levels - 1),
        config={"levels": levels, "tile_size": tile_size},
        name=f"pyramid({file_name})",
    )
    result = runner.run(job)
    pyramid = TilePyramid(
        world=world,
        tile_size=tile_size,
        levels=levels,
        tiles=dict(result.output),
    )
    return OperationResult(answer=pyramid, jobs=[result])
