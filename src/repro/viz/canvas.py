"""A dependency-free raster canvas with density counts per pixel."""

from __future__ import annotations

from typing import List

from repro.geometry import LineString, Point, Polygon, Rectangle


class Canvas:
    """A ``width x height`` grid of hit counters over a world rectangle.

    Pixel (0, 0) is the *bottom-left* of the world window, matching the
    geometry's y-up convention; :meth:`to_ascii` and :meth:`to_pgm` flip
    rows so the output reads the usual way (top row = max y).
    """

    def __init__(self, width: int, height: int, world: Rectangle):
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        if world.width <= 0 or world.height <= 0:
            raise ValueError("world window must have positive area")
        self.width = width
        self.height = height
        self.world = world
        self.counts: List[List[int]] = [[0] * width for _ in range(height)]

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    def _px(self, x: float) -> int:
        fx = (x - self.world.x1) / self.world.width
        return min(max(int(fx * self.width), 0), self.width - 1)

    def _py(self, y: float) -> int:
        fy = (y - self.world.y1) / self.world.height
        return min(max(int(fy * self.height), 0), self.height - 1)

    def _bump(self, px: int, py: int) -> None:
        self.counts[py][px] += 1

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------
    def draw_point(self, p: Point) -> None:
        if self.world.contains_point(p):
            self._bump(self._px(p.x), self._py(p.y))

    def draw_segment(self, a: Point, b: Point) -> None:
        """Rasterise a segment with Bresenham over pixel coordinates."""
        from repro.geometry.algorithms.clip import clip_segment

        clipped = clip_segment(a, b, self.world)
        if clipped is None:
            if a.almost_equals(b) and self.world.contains_point(a):
                self.draw_point(a)
            return
        a, b = clipped
        x0, y0 = self._px(a.x), self._py(a.y)
        x1, y1 = self._px(b.x), self._py(b.y)
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        while True:
            self._bump(x0, y0)
            if x0 == x1 and y0 == y1:
                break
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x0 += sx
            if e2 <= dx:
                err += dx
                y0 += sy

    def draw_shape(self, shape: object) -> None:
        """Dispatch on the shape type (Feature shapes unwrap)."""
        inner = getattr(shape, "shape", None)
        if inner is not None:
            shape = inner
        if isinstance(shape, Point):
            self.draw_point(shape)
        elif isinstance(shape, Rectangle):
            corners = shape.corners
            for i in range(4):
                self.draw_segment(corners[i], corners[(i + 1) % 4])
        elif isinstance(shape, Polygon):
            for a, b in shape.edges():
                self.draw_segment(a, b)
        elif isinstance(shape, LineString):
            for a, b in shape.segments():
                self.draw_segment(a, b)
        else:
            raise TypeError(f"cannot draw {type(shape).__name__}")

    # ------------------------------------------------------------------
    # Combination and output
    # ------------------------------------------------------------------
    def merge(self, other: "Canvas") -> None:
        """Overlay another canvas (same geometry) onto this one."""
        if (other.width, other.height) != (self.width, self.height):
            raise ValueError("cannot merge canvases of different sizes")
        if not other.world.almost_equals(self.world):
            raise ValueError("cannot merge canvases of different worlds")
        for row, other_row in zip(self.counts, other.counts):
            for i, v in enumerate(other_row):
                row[i] += v

    @property
    def max_count(self) -> int:
        return max(max(row) for row in self.counts)

    @property
    def total_hits(self) -> int:
        return sum(sum(row) for row in self.counts)

    def to_pgm(self, invert: bool = True) -> str:
        """Serialise as an ASCII PGM (P2) image, intensity-scaled."""
        peak = max(self.max_count, 1)
        lines = [f"P2", f"{self.width} {self.height}", "255"]
        for row in reversed(self.counts):  # top row first
            values = []
            for count in row:
                level = round(255 * count / peak)
                values.append(str(255 - level if invert else level))
            lines.append(" ".join(values))
        return "\n".join(lines) + "\n"

    def to_ascii(self, ramp: str = " .:-=+*#%@") -> str:
        """Render as ASCII art (darker character = denser pixel)."""
        peak = max(self.max_count, 1)
        out = []
        for row in reversed(self.counts):
            chars = []
            for count in row:
                idx = min(int(count / peak * (len(ramp) - 1) + 0.999), len(ramp) - 1)
                chars.append(ramp[idx] if count else ramp[0])
            out.append("".join(chars))
        return "\n".join(out)
