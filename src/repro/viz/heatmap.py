"""Per-partition heatmaps of a global index.

The index doctor's visual companion: each partition of an indexed file is
drawn as its MBR coloured by record count, so skew (a few dark cells),
overlap hot-spots (stacked cells) and dead space (blank regions) are
visible at a glance. Two dependency-free output formats:

* raster (:class:`~repro.viz.canvas.Canvas` -> PGM/ASCII) — partition
  interiors are filled with one hit per record-unit, so darkness encodes
  load and overlapping partitions accumulate;
* SVG — one ``<rect>`` per partition with an opacity ramp, plus the
  record count as a tooltip, which keeps exact per-partition numbers
  inspectable.
"""

from __future__ import annotations

from typing import Optional

from repro.index.global_index import GlobalIndex
from repro.viz.canvas import Canvas
from repro.viz.escape import escape


def partition_heatmap(
    gindex: GlobalIndex, width: int = 64, height: int = 64
) -> Canvas:
    """Rasterise partition load onto a canvas.

    Every pixel covered by a partition's MBR is bumped by that partition's
    *density rank* (1..9, by record count relative to the fullest
    partition), so the usual canvas renderers shade heavier partitions
    darker and overlapping partitions darker still.
    """
    if len(gindex) == 0:
        raise ValueError("cannot draw an empty global index")
    canvas = Canvas(width, height, gindex.mbr)
    peak = max(c.num_records for c in gindex) or 1
    for cell in gindex:
        weight = 1 + round(8 * cell.num_records / peak)
        x1, x2 = canvas._px(cell.mbr.x1), canvas._px(cell.mbr.x2)
        y1, y2 = canvas._py(cell.mbr.y1), canvas._py(cell.mbr.y2)
        for py in range(y1, y2 + 1):
            row = canvas.counts[py]
            for px in range(x1, x2 + 1):
                row[px] += weight
    return canvas


def heatmap_svg(
    gindex: GlobalIndex, width: int = 640, height: int = 640
) -> str:
    """The per-partition heatmap as a standalone SVG document."""
    if len(gindex) == 0:
        raise ValueError("cannot draw an empty global index")
    world = gindex.mbr
    sx = width / max(world.width, 1e-12)
    sy = height / max(world.height, 1e-12)
    peak = max(c.num_records for c in gindex) or 1
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for cell in sorted(gindex, key=lambda c: c.cell_id):
        # SVG's y axis points down; flip against the world window.
        x = (cell.mbr.x1 - world.x1) * sx
        y = (world.y2 - cell.mbr.y2) * sy
        w = max(cell.mbr.width * sx, 1.0)
        h = max(cell.mbr.height * sy, 1.0)
        opacity = 0.15 + 0.85 * cell.num_records / peak
        parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
            f'fill="#c0392b" fill-opacity="{opacity:.3f}" '
            f'stroke="#2c3e50" stroke-width="1">'
            f"<title>partition {escape(cell.cell_id)}: "
            f"{cell.num_records} records</title></rect>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def write_heatmap(
    gindex: GlobalIndex,
    path: str,
    width: Optional[int] = None,
    height: Optional[int] = None,
) -> str:
    """Write a heatmap to ``path``, picking the format from the suffix.

    ``.svg`` writes the vector heatmap; anything else (conventionally
    ``.pgm``) writes the raster one. Returns the format written.
    """
    if str(path).lower().endswith(".svg"):
        text = heatmap_svg(gindex, width or 640, height or 640)
        fmt = "svg"
    else:
        text = partition_heatmap(gindex, width or 64, height or 64).to_pgm()
        fmt = "pgm"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return fmt
