"""Visualization layer: MapReduce rasterisation of spatial files.

SpatialHadoop's visualization layer renders a whole file into an image
with a single-level MapReduce job: every map task rasterises its partition
onto a partial canvas and the reducer overlays the partials. This package
reproduces that pipeline with a dependency-free integer canvas that can be
written as PGM (portable graymap) or rendered as ASCII art.
"""

from repro.viz.canvas import Canvas
from repro.viz.dashboard import render_dashboard, write_dashboard
from repro.viz.escape import escape
from repro.viz.flamegraph import (
    flamegraph_svg,
    parse_collapsed,
    write_flamegraph,
)
from repro.viz.heatmap import heatmap_svg, partition_heatmap, write_heatmap
from repro.viz.plot import plot
from repro.viz.pyramid import TilePyramid, plot_pyramid, tile_rect

__all__ = [
    "Canvas",
    "TilePyramid",
    "escape",
    "flamegraph_svg",
    "heatmap_svg",
    "parse_collapsed",
    "partition_heatmap",
    "plot",
    "plot_pyramid",
    "render_dashboard",
    "tile_rect",
    "write_dashboard",
    "write_flamegraph",
]
