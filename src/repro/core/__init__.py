"""SpatialHadoop's MapReduce-layer components and the user-facing facade.

Two small components make indexed files usable from MapReduce programs,
exactly as in the paper:

* the **SpatialFileSplitter** (:mod:`repro.core.splitter`) consults the
  global index with a user *filter function* and emits one input split per
  surviving partition — this is the early-pruning step every SpatialHadoop
  operation builds on;
* the **SpatialRecordReader** (:mod:`repro.core.reader`) hands map tasks
  the partition boundary as the input key and, when available, the block's
  local index.

On top of them, :class:`~repro.core.system.SpatialHadoop` is the facade a
user of the library drives: load / index files, then run spatial operations
that return both the answer and the simulated cluster cost.
"""

from repro.core.feature import Feature
from repro.core.result import OperationResult
from repro.core.splitter import (
    every_partition,
    overlapping_filter,
    spatial_splitter,
)
from repro.core.reader import local_index_of, spatial_reader
from repro.core.system import SpatialHadoop
from repro.core.workspace import (
    WorkspaceCorruptError,
    WorkspaceError,
    WorkspaceTypeError,
    WorkspaceVersionError,
    load_workspace,
    save_workspace,
)

__all__ = [
    "Feature",
    "OperationResult",
    "SpatialHadoop",
    "WorkspaceCorruptError",
    "WorkspaceError",
    "WorkspaceTypeError",
    "WorkspaceVersionError",
    "every_partition",
    "load_workspace",
    "local_index_of",
    "overlapping_filter",
    "save_workspace",
    "spatial_reader",
    "spatial_splitter",
]
