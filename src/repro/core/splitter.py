"""The SpatialFileSplitter: global-index-driven partition pruning.

The splitter is the hook through which every SpatialHadoop operation
expresses its *filter* step: a filter function inspects the global index
and returns the cells worth reading; only those become map tasks. Running
the same job with :func:`every_partition` gives the "pruning off" ablation.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.geometry import Rectangle
from repro.index.global_index import Cell, GlobalIndex
from repro.mapreduce import FileSystem
from repro.mapreduce.job import Job
from repro.mapreduce.types import InputSplit

#: filter(global_index) -> cells to process
FilterFn = Callable[[GlobalIndex], List[Cell]]


def global_index_of(fs: FileSystem, file_name: str) -> Optional[GlobalIndex]:
    """The file's global index, or None for a non-indexed heap file."""
    return fs.get(file_name).metadata.get("global_index")


def spatial_splitter(filter_fn: Optional[FilterFn] = None):
    """Build a splitter that prunes partitions with ``filter_fn``.

    The produced splitter requires a spatially indexed input file (it reads
    the global index from the file metadata) and keys every split with the
    partition's boundary rectangle, which the map function receives as its
    input key — matching the paper's ``MAP(k: Rectangle, ...)`` convention.
    """

    def splitter(fs: FileSystem, job: Job) -> List[InputSplit]:
        entry = fs.get(job.input_file)
        gindex: Optional[GlobalIndex] = entry.metadata.get("global_index")
        if gindex is None:
            raise ValueError(
                f"{job.input_file!r} is not spatially indexed; "
                "load it with build_index first"
            )
        selected = filter_fn(gindex) if filter_fn is not None else list(gindex)
        wanted = {cell.cell_id for cell in selected}
        if not wanted:
            # Nothing survived the filter (commonly the presence bitmap
            # rejecting an empty region): skip the block-metadata walk.
            return []
        return [
            InputSplit(
                file=job.input_file,
                block_index=i,
                block=block,
                key=block.metadata["cell"],
            )
            for i, block in enumerate(entry.blocks)
            if block.metadata.get("cell_id") in wanted
        ]

    return splitter


def every_partition(gindex: GlobalIndex) -> List[Cell]:
    """The identity filter: process all partitions (pruning disabled)."""
    return list(gindex)


def overlapping_filter(query: Rectangle) -> FilterFn:
    """Filter for range-style operations: keep cells intersecting ``query``."""

    def filter_fn(gindex: GlobalIndex) -> List[Cell]:
        return gindex.overlapping(query)

    return filter_fn
