"""Operation results: answer plus simulated cost accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

from repro.mapreduce import Counters, JobResult


@dataclass
class OperationResult:
    """What every spatial operation returns.

    ``answer`` is operation-specific (a record list, a pair, hull points,
    ...). ``jobs`` are the MapReduce rounds executed. ``extra_seconds``
    captures driver-side single-machine work (e.g. the final merge of a
    two-phase algorithm) so that the reported makespan stays honest.
    """

    answer: Any
    jobs: List[JobResult] = field(default_factory=list)
    extra_seconds: float = 0.0
    system: str = "spatialhadoop"

    @property
    def makespan(self) -> float:
        """Simulated wall-clock of the whole operation."""
        return sum(j.makespan for j in self.jobs) + self.extra_seconds

    @property
    def rounds(self) -> int:
        return len(self.jobs)

    @property
    def counters(self) -> Counters:
        merged = Counters()
        for job in self.jobs:
            merged.merge(job.counters)
        return merged

    @property
    def blocks_read(self) -> int:
        return sum(j.blocks_read for j in self.jobs)
