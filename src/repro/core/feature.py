"""Feature: a shape with attached attributes.

The spatial analogue of a database row — what Pigeon scripts and the
example applications manipulate. The indexing and operations layers only
require records to expose ``.mbr``, so features index and query exactly
like bare shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.geometry import Rectangle


@dataclass(frozen=True)
class Feature:
    """An immutable (shape, attributes) record."""

    shape: Any
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def mbr(self) -> Rectangle:
        return self.shape.mbr

    def get(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def with_attributes(self, **updates: Any) -> "Feature":
        """A copy with ``updates`` merged into the attributes."""
        merged = dict(self.attributes)
        merged.update(updates)
        return Feature(shape=self.shape, attributes=merged)

    def __getitem__(self, name: str) -> Any:
        return self.attributes[name]

    def __hash__(self) -> int:
        return hash((self.shape, tuple(sorted(self.attributes.items()))))

    def __str__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attributes.items()))
        return f"Feature({self.shape}, {attrs})"
