"""The SpatialHadoop facade: the library's main entry point.

Wraps a simulated cluster (file system + job runner) behind the workflow a
SpatialHadoop user follows: *load* files, *index* them with a partitioning
technique, then run *spatial operations* that exploit the index. Every
operation returns an :class:`~repro.core.result.OperationResult` carrying
the answer, the MapReduce rounds executed, and the simulated makespan.

    >>> from repro import SpatialHadoop
    >>> from repro.datagen import generate_points
    >>> from repro.geometry import Rectangle
    >>> sh = SpatialHadoop(num_nodes=8)
    >>> sh.load("pts", generate_points(10_000, "uniform", seed=1))
    >>> sh.index("pts", "pts_idx", technique="str")
    >>> result = sh.range_query("pts_idx", Rectangle(0, 0, 1e5, 1e5))
    >>> len(result.answer), result.blocks_read  # doctest: +SKIP
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List, Optional

from repro.core.result import OperationResult
from repro.geometry import Point, Rectangle
from repro.geometry.wkt import WKTParseError, parse_wkt
from repro.index.build import IndexBuildResult, build_index
from repro.mapreduce import ClusterModel, FileSystem, JobRunner
from repro.mapreduce.storage import FsckReport, run_fsck
from repro.observe import JobHistory, MetricsRegistry, NullTracer, Tracer

if TYPE_CHECKING:  # lazy imports below avoid the observe -> explain cycle
    from repro.mapreduce.checkpoint import (
        CancellationToken,
        CheckpointManager,
    )
    from repro.observe import Diagnosis, ProgressReporter, TelemetryLog
    from repro.observe.explain import Explanation
    from repro.observe.log import EventLog
    from repro.serve import QueryService


class SpatialHadoop:
    """A simulated SpatialHadoop deployment."""

    def __init__(
        self,
        num_nodes: int = 25,
        block_capacity: int = 10_000,
        job_overhead_s: float = 0.5,
        workers: Optional[int] = None,
        max_attempts: Optional[int] = None,
        task_timeout: Optional[float] = None,
        speculative: bool = False,
        faults: Any = None,
        replication: int = 3,
    ):
        """``workers`` picks the execution backend: 1 (default) runs tasks
        serially in-process; >1 runs each map/reduce wave across that many
        worker processes. ``None`` defers to the ``REPRO_WORKERS``
        environment variable. Backends are output-equivalent; only real
        wall-clock changes, never results or simulated makespans.

        ``max_attempts``, ``task_timeout``, ``speculative`` and ``faults``
        configure the fault-tolerance layer (see :class:`JobRunner`);
        ``faults`` accepts a :class:`~repro.mapreduce.FaultPlan` or a spec
        string and defaults to ``$REPRO_FAULTS``.

        ``replication`` is the HDFS-style replica count: every block is
        checksummed and placed as (up to) that many copies across the
        cluster's datanodes, so reads survive ``losenode`` /
        ``corruptblock`` faults (see :meth:`fsck`)."""
        self.fs = FileSystem(
            default_block_capacity=block_capacity,
            num_datanodes=num_nodes,
            replication=replication,
        )
        self.cluster = ClusterModel(
            num_nodes=num_nodes, job_overhead_s=job_overhead_s
        )
        #: The observability layer: every job the runner finishes lands in
        #: ``history`` and ``metrics``; ``tracer`` is a no-op until
        #: :meth:`enable_tracing` swaps in a live one.
        self.tracer = NullTracer()
        self.metrics = MetricsRegistry()
        self.history = JobHistory()
        runner_kwargs: dict = {}
        if max_attempts is not None:
            runner_kwargs["max_attempts"] = max_attempts
        self.runner = JobRunner(
            self.fs,
            self.cluster,
            workers=workers,
            tracer=self.tracer,
            metrics=self.metrics,
            history=self.history,
            task_timeout=task_timeout,
            speculative=speculative,
            faults=faults,
            **runner_kwargs,
        )

    def __setstate__(self, state):
        # Workspaces pickled before the observability layer existed must
        # keep loading: attach default (empty) history/metrics/tracer.
        self.__dict__.update(state)
        if "history" not in state:
            self.history = JobHistory()
            self.metrics = MetricsRegistry()
            self.tracer = NullTracer()
            self.runner.history = self.history
            self.runner.metrics = self.metrics
            self.runner.tracer = self.tracer

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def enable_tracing(self) -> Tracer:
        """Start span tracing and return the live tracer.

        Replaces the no-op default on both the facade and the runner, so
        every subsequent job, index build, operation and Pigeon statement
        records spans. Call :meth:`disable_tracing` to go back to the
        zero-overhead default.
        """
        if not self.tracer.enabled:
            self.tracer = Tracer()
            self.runner.set_tracer(self.tracer)
        return self.tracer

    def disable_tracing(self) -> None:
        self.tracer = NullTracer()
        self.runner.set_tracer(self.tracer)

    def history_report(self, last: Optional[int] = None) -> str:
        """The Hadoop-JobHistory-style text report of retained jobs."""
        return self.history.report(last=last)

    def telemetry(self) -> "TelemetryLog":
        """The wave-boundary scrape log, attaching one if none exists.

        Once attached, the runner snapshots the metrics registry (plus
        the running job's counters) at every job start, wave boundary and
        job end. The log is plain data and pickles with the workspace, so
        scrapes accumulate across CLI invocations until
        :meth:`TelemetryLog.clear` or export.
        """
        from repro.observe import TelemetryLog

        if getattr(self.runner, "telemetry", None) is None:
            self.runner.telemetry = TelemetryLog()
        return self.runner.telemetry

    def eventlog(self, level: Optional[str] = None) -> "EventLog":
        """The structured event log, attaching one if none exists.

        Once attached, the runner (and the facade's load/index/fsck
        paths) append leveled, structured records — the flight recorder.
        Like the telemetry log it is plain data and pickles with the
        workspace, ring-buffer bounded, so the record survives across
        CLI invocations. ``level`` (debug/info/warn/error) adjusts the
        threshold of an existing log too.
        """
        from repro.observe.log import EventLog

        log = getattr(self.runner, "eventlog", None)
        if log is None:
            log = self.runner.eventlog = EventLog(level=level or "info")
        elif level is not None:
            log.level = level
        return log

    def disable_eventlog(self) -> None:
        """Detach the event log (subsequent jobs emit nothing)."""
        self.runner.eventlog = None

    def _log_event(self, level: str, component: str, event: str,
                   **attrs: Any) -> None:
        """Facade-side emission; free when no log is attached."""
        log = getattr(self.runner, "eventlog", None)
        if log is not None:
            log.emit(level, component, event, **attrs)

    def openmetrics(self, prefix: str = "repro_") -> str:
        """Current metrics in OpenMetrics/Prometheus text exposition.

        Labels every sample with the execution backend (``workers``) and
        whether the vectorized kernels are active, so scrapes from
        different backends stay distinguishable in one store.
        """
        from repro.geometry import vectorized
        from repro.observe import render_openmetrics

        return render_openmetrics(
            self.metrics.snapshot(),
            prefix=prefix,
            labels={
                "workers": str(self.runner.workers),
                "vectorized": vectorized.mode(),
            },
        )

    def enable_profiling(self) -> None:
        """Turn per-phase task profiling on for subsequent jobs.

        Adds a phase breakdown (split-fetch, shm-attach, columnar decode,
        kernel, R-tree probe, shuffle-serialize, commit ...) to every
        ``JobResult``, the history report and ANALYZE actuals. Costs a
        few timer reads per task phase; off by default.
        """
        self.runner.profile = True

    def disable_profiling(self) -> None:
        self.runner.profile = False

    def enable_progress(self, stream: Any = None) -> "ProgressReporter":
        """Stream live wave/task progress to ``stream`` (default stderr).

        The reporter is attached per-invocation: it holds an open stream,
        so it is never pickled with a workspace — call
        :meth:`disable_progress` (or drop the facade) when done.
        """
        from repro.observe import ProgressReporter

        reporter = ProgressReporter(stream=stream)
        self.runner.set_progress(reporter)
        return reporter

    def disable_progress(self) -> None:
        self.runner.set_progress(None)

    # ------------------------------------------------------------------
    # Crash recovery: wave checkpointing, resume, deadlines
    # ------------------------------------------------------------------
    def enable_checkpoints(
        self,
        directory: Any,
        argv: Optional[List[str]] = None,
        workspace: str = "",
        deadline: Optional[float] = None,
    ) -> "CheckpointManager":
        """Arm crash-consistent wave checkpointing for subsequent jobs.

        Starts a fresh journal at ``directory`` (clearing any stale one)
        and attaches it to the runner: every map/reduce wave commits its
        results atomically, and a manifest records the command, fault
        plan position and per-wave state needed for :meth:`resume` to
        replay the run bit-identically. Off by default — the journal
        costs one columnar-packed pickle and an atomic rename per wave
        (~2.6% on a mixed analytics suite; see ``BENCH_e16.json``).
        """
        from repro.mapreduce.checkpoint import CheckpointManager

        plan = self.runner.faults
        manager = CheckpointManager.create(
            directory,
            argv=list(argv or []),
            workspace=workspace,
            faults=plan.describe() if plan is not None else None,
            workers=self.runner.workers,
            deadline=deadline,
        )
        self.runner.set_checkpoint(manager)
        self._log_event(
            "info", "checkpoint", "checkpoints-enabled",
            volatile=True, directory=str(manager.directory),
        )
        return manager

    def resume(self, directory: Any) -> "CheckpointManager":
        """Attach the journal of an interrupted run for resumption.

        Validates the journal with the fsck machinery first (a corrupt
        manifest raises :class:`~repro.mapreduce.checkpoint.
        CheckpointCorruptError`; corrupt wave files are discarded and
        re-executed), then arms the runner so already-committed waves
        are *replayed* from the journal instead of re-executed, and
        injected driver faults that already fired are not re-fired.
        Re-running the recorded command afterwards yields results,
        counters and normalized traces identical to an uninterrupted
        run.
        """
        from repro.mapreduce.checkpoint import (
            CheckpointManager,
            fsck_checkpoints,
        )

        fsck_checkpoints(directory, repair=True)
        manager = CheckpointManager.load(directory)
        self.runner.set_checkpoint(manager)
        self.metrics.inc("RESUMES")
        self._log_event(
            "info", "checkpoint", "run-resumed", volatile=True,
            directory=str(manager.directory),
            waves_available=manager.waves_available,
        )
        return manager

    def disable_checkpoints(self) -> None:
        """Detach the checkpoint journal (subsequent waves not journaled)."""
        self.runner.set_checkpoint(None)

    def set_deadline(
        self, seconds: Optional[float]
    ) -> Optional["CancellationToken"]:
        """Install a cooperative deadline for subsequent jobs.

        The runner polls the token between tasks and at wave/round
        boundaries; past the deadline the current command stops at the
        next boundary with :class:`~repro.mapreduce.checkpoint.
        DeadlineExceeded`, after persisting a resumable checkpoint (when
        armed) and cleaning up pools and shared memory. ``None`` removes
        any existing token.
        """
        from repro.mapreduce.checkpoint import CancellationToken

        if seconds is None:
            self.runner.set_cancellation(None)
            return None
        token = CancellationToken(deadline_s=seconds)
        self.runner.set_cancellation(token)
        return token

    def serve(self, **kwargs: Any) -> "QueryService":
        """A multi-tenant query service fronting this workspace.

        Keyword arguments pass through to :class:`~repro.serve.service.
        QueryService` (``config``, ``quotas``, ``default_quota``); the
        service shares this facade's file system, cluster model, metrics
        and event log, so its admission decisions are charged in the
        same simulated currency as every operation.
        """
        from repro.serve import QueryService

        return QueryService(self, **kwargs)

    def explain(self, query_text: str) -> "Explanation":
        """EXPLAIN: the plan tree for a query, without executing it."""
        from repro.observe import explain

        return explain.explain_query(self, query_text)

    def analyze(self, query_text: str) -> "Explanation":
        """ANALYZE: execute the query and annotate the plan with actuals."""
        from repro.observe import explain

        return explain.analyze_query(self, query_text)

    def doctor(
        self, file_name: str, block_capacity: Optional[int] = None
    ) -> "Diagnosis":
        """Run the index doctor over an indexed file.

        Job history rides along so retry-prone partitions (map tasks
        that keep failing) show up as findings.
        """
        from repro.observe import diagnose

        return diagnose(
            self.fs,
            file_name,
            block_capacity=block_capacity,
            history=self.history,
        )

    # ------------------------------------------------------------------
    # Storage layer
    # ------------------------------------------------------------------
    def load(
        self,
        name: str,
        records: Iterable[Any],
        block_capacity: Optional[int] = None,
        on_bad_record: str = "raise",
    ) -> None:
        """Upload records as a heap file (plain Hadoop loader).

        String records are parsed as WKT. ``on_bad_record`` picks the
        ingest policy for malformed text:

        * ``"raise"`` (default) — the first bad record aborts the load
          with a :class:`~repro.geometry.wkt.WKTParseError`;
        * ``"skip"`` — bad records are dropped and counted in the
          workspace-level ``BAD_RECORDS_SKIPPED`` metric;
        * ``"quarantine"`` — like ``skip``, but the offending raw texts
          are also written to a ``<name>.quarantine`` side file for
          later inspection.
        """
        if on_bad_record not in ("raise", "skip", "quarantine"):
            raise ValueError(
                "on_bad_record must be 'raise', 'skip' or 'quarantine', "
                f"not {on_bad_record!r}"
            )
        quarantined: List[str] = []

        def parsed():
            for record in records:
                if not isinstance(record, str):
                    yield record
                    continue
                try:
                    yield parse_wkt(record)
                except WKTParseError:
                    if on_bad_record == "raise":
                        raise
                    quarantined.append(record)

        self.fs.create_file(name, parsed(), block_capacity=block_capacity)
        if quarantined:
            self.metrics.inc("BAD_RECORDS_SKIPPED", len(quarantined))
            if on_bad_record == "quarantine":
                side = f"{name}.quarantine"
                if self.fs.exists(side):
                    self.fs.delete(side)
                self.fs.create_file(side, quarantined)
        entry = self.fs.get(name)
        self._log_event(
            "warn" if quarantined else "info", "fs", "file-loaded",
            file=name, records=entry.num_records, blocks=entry.num_blocks,
            bad_records=len(quarantined),
        )

    def index(
        self,
        input_file: str,
        output_file: str,
        technique: str = "str",
        **kwargs: Any,
    ) -> IndexBuildResult:
        """Build a spatial index over ``input_file`` (see :func:`build_index`)."""
        result = build_index(
            self.runner, input_file, output_file, technique, **kwargs
        )
        self._log_event(
            "info", "index", "index-built",
            file=output_file, technique=technique,
            cells=len(result.global_index.cells),
        )
        return result

    def records(self, name: str) -> List[Any]:
        """Full contents of a file (test/debug helper)."""
        return self.fs.read_records(name)

    def fsck(
        self, repair: bool = False, checkpoint_dir: Any = None
    ) -> FsckReport:
        """Verify (and optionally repair) every file's storage health.

        Walks all blocks checking payload checksums, replica placement
        and local/global-index integrity, exactly like ``hdfs fsck``.
        With ``repair=True``, corrupt and under-replicated blocks are
        re-replicated from surviving healthy copies and damaged local
        indexes are rebuilt from the block's records. The run is
        recorded in the job-history report and the
        ``FSCK_RUNS`` / ``BLOCKS_CORRUPT_DETECTED`` /
        ``REPLICAS_REPAIRED`` metrics. ``checkpoint_dir`` additionally
        audits a crash-recovery journal (``checkpoint-*`` issue codes;
        with ``repair=True`` corrupt wave files are deleted so resume
        re-executes them).
        """
        report = run_fsck(
            self.fs,
            repair=repair,
            metrics=self.metrics,
            checkpoint_dir=checkpoint_dir,
        )
        self.history.record_fsck(report.summary())
        self._log_event(
            "info" if report.healthy else "warn", "storage",
            "fsck-completed", healthy=report.healthy,
            issues=len(report.issues), repaired=report.repaired_count,
        )
        return report

    # ------------------------------------------------------------------
    # Operations layer. Each method dispatches to the Hadoop variant for
    # heap files and the SpatialHadoop variant for indexed files.
    # ------------------------------------------------------------------
    def _is_indexed(self, name: str) -> bool:
        return "global_index" in self.fs.get(name).metadata

    def range_query(
        self, file_name: str, query: Rectangle, **kwargs: Any
    ) -> OperationResult:
        from repro.operations import range_query_hadoop, range_query_spatial

        if self._is_indexed(file_name):
            return range_query_spatial(self.runner, file_name, query, **kwargs)
        return range_query_hadoop(self.runner, file_name, query)

    def range_count(
        self, file_name: str, query: Rectangle
    ) -> OperationResult:
        from repro.operations import range_count_hadoop, range_count_spatial

        if self._is_indexed(file_name):
            return range_count_spatial(self.runner, file_name, query)
        return range_count_hadoop(self.runner, file_name, query)

    def knn(
        self, file_name: str, query: Point, k: int, **kwargs: Any
    ) -> OperationResult:
        from repro.operations import knn_hadoop, knn_spatial

        if self._is_indexed(file_name):
            return knn_spatial(self.runner, file_name, query, k, **kwargs)
        return knn_hadoop(self.runner, file_name, query, k)

    def spatial_join(
        self, left_file: str, right_file: str, **kwargs: Any
    ) -> OperationResult:
        from repro.operations import (
            spatial_join_distributed,
            spatial_join_sjmr,
        )

        if self._is_indexed(left_file) and self._is_indexed(right_file):
            return spatial_join_distributed(self.runner, left_file, right_file)
        return spatial_join_sjmr(self.runner, left_file, right_file, **kwargs)

    def knn_join(
        self, left_file: str, right_file: str, k: int
    ) -> OperationResult:
        from repro.operations import knn_join_hadoop, knn_join_spatial

        if self._is_indexed(left_file) and self._is_indexed(right_file):
            return knn_join_spatial(self.runner, left_file, right_file, k)
        return knn_join_hadoop(self.runner, left_file, right_file, k)

    def skyline(self, file_name: str, **kwargs: Any) -> OperationResult:
        from repro.operations import skyline_hadoop, skyline_spatial

        if self._is_indexed(file_name):
            return skyline_spatial(self.runner, file_name, **kwargs)
        return skyline_hadoop(self.runner, file_name)

    def convex_hull(self, file_name: str, **kwargs: Any) -> OperationResult:
        from repro.operations import convex_hull_hadoop, convex_hull_spatial

        if self._is_indexed(file_name):
            return convex_hull_spatial(self.runner, file_name, **kwargs)
        return convex_hull_hadoop(self.runner, file_name)

    def closest_pair(self, file_name: str) -> OperationResult:
        from repro.operations import closest_pair_spatial

        return closest_pair_spatial(self.runner, file_name)

    def farthest_pair(self, file_name: str) -> OperationResult:
        from repro.operations import farthest_pair_hadoop, farthest_pair_spatial

        if self._is_indexed(file_name):
            return farthest_pair_spatial(self.runner, file_name)
        return farthest_pair_hadoop(self.runner, file_name)

    def voronoi(self, file_name: str) -> OperationResult:
        from repro.operations import voronoi_spatial

        return voronoi_spatial(self.runner, file_name)

    def union(self, file_name: str, enhanced: bool = False) -> OperationResult:
        from repro.operations import union_enhanced, union_hadoop, union_spatial

        if enhanced:
            return union_enhanced(self.runner, file_name)
        if self._is_indexed(file_name):
            return union_spatial(self.runner, file_name)
        return union_hadoop(self.runner, file_name)
