"""The SpatialRecordReader: local-index-aware record access.

Hadoop's record reader streams raw records to the map function. The
spatial reader additionally exposes the block's local index, letting map
functions answer range/kNN sub-queries in logarithmic time instead of
scanning the partition — the "local index on/off" ablation of E2.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.index.rtree import RTree
from repro.mapreduce.job import MapContext
from repro.mapreduce.types import InputSplit


def spatial_reader(split: InputSplit) -> Tuple[Any, List[Any]]:
    """Yield the partition boundary as the key and the records as values."""
    return split.key, list(split.block.records)


def local_index_of(ctx: MapContext) -> Optional[RTree]:
    """The local index of the map task's partition, when one was built."""
    return ctx.split.metadata.get("local_index")
