"""Atomic, versioned, checksummed workspace persistence.

A workspace file holds a pickled :class:`~repro.core.system.SpatialHadoop`
instance — the whole simulated HDFS plus its job history and metrics. A
bare ``pickle.dump`` over the destination is fragile in exactly the ways
HDFS's edit log is not: a crash mid-write leaves a truncated file, a
flipped byte produces an opaque ``UnpicklingError`` pages deep in the
pickle machinery, and nothing says which tool or version wrote the file.

Format v2 wraps the pickle payload in a small header::

    REPROWS\\n | version (u8) | payload crc32 (u32 BE) | payload length (u64 BE) | payload

and writes atomically: serialise to a temp file in the destination
directory, flush + ``fsync``, then ``os.replace`` over the target — so a
reader never observes a half-written workspace. Loading verifies magic,
version, length and CRC before unpickling and raises a structured
:class:`WorkspaceError` subclass (never a raw ``UnpicklingError``).

Files written by earlier releases (plain pickles, no header) still load:
anything that does not start with the magic falls back to the legacy
path, preserving backward compatibility.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, Optional, Type

MAGIC = b"REPROWS\n"
FORMAT_VERSION = 2
#: Header after the magic: version (u8), payload CRC-32 (u32), length (u64).
_HEADER = struct.Struct(">BIQ")


class WorkspaceError(Exception):
    """Base class for workspace persistence failures."""


class WorkspaceCorruptError(WorkspaceError):
    """The file is truncated, bit-flipped, or otherwise unreadable."""


class WorkspaceVersionError(WorkspaceError):
    """The file declares a format version this release cannot read."""


class WorkspaceTypeError(WorkspaceError):
    """The file decoded cleanly but does not contain a workspace object."""


def atomic_write(path: Path, *chunks: bytes, sync: bool = True) -> None:
    """Write ``chunks`` to ``path`` atomically (temp + fsync + rename).

    The bytes land in a sibling temp file first, are flushed and
    ``fsync``-ed, then renamed over the destination — so a crash at any
    point leaves either the old file or the new one, never a torn one.
    Shared by workspace persistence and run-bundle export.

    ``sync=False`` skips the fsync (the rename is still atomic against
    *process* death, which keeps the page cache; only power loss can
    tear the file then). Callers whose read path detects and tolerates
    torn files — the checkpoint journal, whose CRC framing turns a torn
    wave into a cache miss — use it to keep hot-path writes cheap.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as fh:
            for chunk in chunks:
                fh.write(chunk)
            fh.flush()
            if sync:
                os.fsync(fh.fileno())
        os.replace(str(tmp), str(path))
    except BaseException:
        try:
            os.unlink(str(tmp))
        except OSError:
            pass
        raise


def save_workspace(sh: Any, path: Path) -> None:
    """Atomically persist ``sh`` to ``path`` in format v2."""
    path = Path(path)
    payload = pickle.dumps(sh, protocol=pickle.HIGHEST_PROTOCOL)
    header = MAGIC + _HEADER.pack(
        FORMAT_VERSION, zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
    )
    atomic_write(path, header, payload)


def load_workspace(
    path: Path, expected_type: Optional[Type] = None
) -> Any:
    """Load a workspace from ``path``, verifying header and checksum.

    Accepts both format-v2 files and legacy headerless pickles. Raises
    :class:`WorkspaceCorruptError` on truncation/bit-rot,
    :class:`WorkspaceVersionError` on an unknown format version, and
    :class:`WorkspaceTypeError` when the decoded object is not an
    instance of ``expected_type``.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise WorkspaceError(f"cannot read workspace {path}: {exc}") from exc

    if raw.startswith(MAGIC):
        obj = _load_v2(path, raw)
    else:
        obj = _load_legacy(path, raw)

    if expected_type is not None and not isinstance(obj, expected_type):
        raise WorkspaceTypeError(
            f"{path} is not a repro workspace "
            f"(contains {type(obj).__name__})"
        )
    return obj


def _load_v2(path: Path, raw: bytes) -> Any:
    header_end = len(MAGIC) + _HEADER.size
    if len(raw) < header_end:
        raise WorkspaceCorruptError(
            f"workspace {path} is truncated (incomplete header)"
        )
    version, crc, length = _HEADER.unpack(raw[len(MAGIC):header_end])
    if version > FORMAT_VERSION:
        raise WorkspaceVersionError(
            f"workspace {path} uses format v{version}; this release "
            f"reads up to v{FORMAT_VERSION}"
        )
    payload = raw[header_end:]
    if len(payload) != length:
        raise WorkspaceCorruptError(
            f"workspace {path} is truncated: header promises {length} "
            f"payload bytes, file has {len(payload)}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise WorkspaceCorruptError(
            f"workspace {path} failed its checksum — the file is "
            "corrupt (run 'repro fsck --repair' after restoring a "
            "good copy, or recreate the workspace)"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise WorkspaceCorruptError(
            f"workspace {path} passed its checksum but failed to "
            f"decode ({type(exc).__name__}: {exc}); it was likely "
            "written by an incompatible release"
        ) from exc


def _load_legacy(path: Path, raw: bytes) -> Any:
    # Pre-v2 files are bare pickles with no integrity data; decode
    # failures here mean truncation or corruption we cannot distinguish.
    try:
        return pickle.loads(raw)
    except Exception as exc:
        raise WorkspaceCorruptError(
            f"workspace {path} is corrupt or truncated "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def is_workspace_file(path: Path) -> bool:
    """Cheap sniff: does ``path`` start with the v2 magic?"""
    try:
        with io.open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
