"""Seeded synthetic workload generators.

Stand-ins for the papers' OSM extracts and generated datasets. Every
distribution used in the evaluation is available: ``uniform``, ``gaussian``,
``correlated``, ``anti_correlated`` (the skyline best/worst cases),
``circular`` (the farthest-pair worst case) and ``diagonal``. Rectangle
and polygon generators cover the join and union workloads.

All generators take an explicit seed so experiments are reproducible.
"""

from repro.datagen.points import (
    DISTRIBUTIONS,
    generate_points,
)
from repro.datagen.shapes import generate_polygons, generate_rectangles

__all__ = [
    "DISTRIBUTIONS",
    "generate_points",
    "generate_polygons",
    "generate_rectangles",
]
