"""Point dataset generators for every evaluation distribution."""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List

from repro.geometry import Point, Rectangle

Sampler = Callable[[random.Random, Rectangle], Point]


def _uniform(rng: random.Random, space: Rectangle) -> Point:
    return Point(rng.uniform(space.x1, space.x2), rng.uniform(space.y1, space.y2))


def _clamp(v: float, lo: float, hi: float) -> float:
    return min(max(v, lo), hi)


def _gaussian(rng: random.Random, space: Rectangle) -> Point:
    cx, cy = space.center.x, space.center.y
    sx, sy = space.width / 6.0, space.height / 6.0
    return Point(
        _clamp(rng.gauss(cx, sx), space.x1, space.x2),
        _clamp(rng.gauss(cy, sy), space.y1, space.y2),
    )


def _correlated(rng: random.Random, space: Rectangle) -> Point:
    """Points hugging the main diagonal: the skyline best case."""
    t = rng.random()
    jitter = rng.gauss(0, 0.05)
    return Point(
        space.x1 + _clamp(t + jitter, 0, 1) * space.width,
        space.y1 + _clamp(t - jitter, 0, 1) * space.height,
    )


def _anti_correlated(rng: random.Random, space: Rectangle) -> Point:
    """Points hugging the anti-diagonal: the skyline worst case."""
    t = rng.random()
    jitter = rng.gauss(0, 0.05)
    return Point(
        space.x1 + _clamp(t + jitter, 0, 1) * space.width,
        space.y1 + _clamp(1 - t + jitter, 0, 1) * space.height,
    )


def _circular(rng: random.Random, space: Rectangle) -> Point:
    """Points on a thin annulus: maximises the convex hull size."""
    angle = rng.uniform(0, 2 * math.pi)
    radius = min(space.width, space.height) / 2.0
    r = radius * rng.uniform(0.95, 1.0)
    c = space.center
    return Point(
        _clamp(c.x + r * math.cos(angle), space.x1, space.x2),
        _clamp(c.y + r * math.sin(angle), space.y1, space.y2),
    )


def _diagonal(rng: random.Random, space: Rectangle) -> Point:
    """A dense band along the diagonal (heavy 1-D skew)."""
    t = rng.betavariate(2, 2)
    off = rng.gauss(0, 0.02)
    return Point(
        space.x1 + _clamp(t + off, 0, 1) * space.width,
        space.y1 + _clamp(t, 0, 1) * space.height,
    )


DISTRIBUTIONS: Dict[str, Sampler] = {
    "uniform": _uniform,
    "gaussian": _gaussian,
    "correlated": _correlated,
    "anti_correlated": _anti_correlated,
    "circular": _circular,
    "diagonal": _diagonal,
}

DEFAULT_SPACE = Rectangle(0.0, 0.0, 1_000_000.0, 1_000_000.0)


def generate_points(
    n: int,
    distribution: str = "uniform",
    seed: int = 0,
    space: Rectangle = DEFAULT_SPACE,
) -> List[Point]:
    """``n`` seeded points drawn from the named distribution."""
    try:
        sampler = DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"pick one of {sorted(DISTRIBUTIONS)}"
        ) from None
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = random.Random(seed)
    return [sampler(rng, space) for _ in range(n)]
