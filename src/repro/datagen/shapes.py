"""Rectangle and polygon dataset generators (join and union workloads)."""

from __future__ import annotations

import math
import random
from typing import List

from repro.datagen.points import DEFAULT_SPACE, DISTRIBUTIONS
from repro.geometry import Point, Polygon, Rectangle


def generate_rectangles(
    n: int,
    distribution: str = "uniform",
    seed: int = 0,
    space: Rectangle = DEFAULT_SPACE,
    avg_side_fraction: float = 0.01,
) -> List[Rectangle]:
    """``n`` seeded rectangles with centres from the named distribution.

    ``avg_side_fraction`` controls the mean rectangle side as a fraction of
    the space extent, which directly controls join selectivity.
    """
    try:
        sampler = DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(f"unknown distribution {distribution!r}") from None
    rng = random.Random(seed)
    max_w = space.width * avg_side_fraction * 2
    max_h = space.height * avg_side_fraction * 2
    out: List[Rectangle] = []
    for _ in range(n):
        c = sampler(rng, space)
        w = rng.uniform(0, max_w)
        h = rng.uniform(0, max_h)
        out.append(
            Rectangle(
                max(space.x1, c.x - w / 2),
                max(space.y1, c.y - h / 2),
                min(space.x2, c.x + w / 2),
                min(space.y2, c.y + h / 2),
            )
        )
    return out


def generate_polygons(
    n: int,
    distribution: str = "uniform",
    seed: int = 0,
    space: Rectangle = DEFAULT_SPACE,
    avg_radius_fraction: float = 0.01,
    min_vertices: int = 4,
    max_vertices: int = 10,
) -> List[Polygon]:
    """``n`` seeded star-shaped simple polygons (parcel-style workload).

    Each polygon is built by sorting random angular offsets around a centre
    point, guaranteeing a simple (non self-intersecting) shell — the same
    construction the SpatialHadoop generator uses for parcel data.
    """
    try:
        sampler = DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(f"unknown distribution {distribution!r}") from None
    if min_vertices < 3 or max_vertices < min_vertices:
        raise ValueError("need max_vertices >= min_vertices >= 3")
    rng = random.Random(seed)
    base_radius = min(space.width, space.height) * avg_radius_fraction
    out: List[Polygon] = []
    while len(out) < n:
        c = sampler(rng, space)
        k = rng.randint(min_vertices, max_vertices)
        angles = sorted(rng.uniform(0, 2 * math.pi) for _ in range(k))
        # Angle-sorted vertices give a star-shaped (hence simple) polygon
        # only when every angular gap stays below pi; otherwise the closing
        # edge can slice through other sectors. Redraw on a wide gap.
        gaps = [angles[i + 1] - angles[i] for i in range(k - 1)]
        gaps.append(2 * math.pi - (angles[-1] - angles[0]))
        if max(gaps) >= math.pi * 0.95:
            continue
        shell = [
            Point(
                c.x + rng.uniform(0.5, 1.0) * base_radius * math.cos(a),
                c.y + rng.uniform(0.5, 1.0) * base_radius * math.sin(a),
            )
            for a in angles
        ]
        try:
            poly = Polygon(shell)
        except ValueError:
            continue  # nearly coincident vertices: redraw
        if poly.area > 0 and poly.is_simple():
            out.append(poly)
    return out
